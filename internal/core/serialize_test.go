package core

import (
	"bytes"
	"testing"

	"compaqt/internal/device"
)

func testImage(t *testing.T) *Image {
	t.Helper()
	c := &Compiler{WindowSize: 16, Adaptive: true}
	img, err := c.Compile(device.Bogota())
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestSizeMatchesWriteTo(t *testing.T) {
	img := testImage(t)
	var buf bytes.Buffer
	n, err := img.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != buf.Len() {
		t.Errorf("WriteTo returned %d, wrote %d bytes", n, buf.Len())
	}
	if img.Size() != buf.Len() {
		t.Errorf("Size() = %d, serialized form is %d bytes", img.Size(), buf.Len())
	}
	empty := &Image{Machine: "m", WindowSize: 16}
	var ebuf bytes.Buffer
	if _, err := empty.WriteTo(&ebuf); err != nil {
		t.Fatal(err)
	}
	if empty.Size() != ebuf.Len() {
		t.Errorf("empty image Size() = %d, serialized form is %d bytes", empty.Size(), ebuf.Len())
	}
}

func TestAppendToMatchesWriteTo(t *testing.T) {
	img := testImage(t)
	var buf bytes.Buffer
	if _, err := img.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := img.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf.Bytes()) {
		t.Fatal("AppendTo bytes differ from WriteTo bytes")
	}
	// Appending after a prefix keeps the prefix and appends the same
	// serialized form.
	withPrefix, err := img.AppendTo([]byte("prefix"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(withPrefix[:6], []byte("prefix")) || !bytes.Equal(withPrefix[6:], buf.Bytes()) {
		t.Fatal("AppendTo with a prefix corrupted the output")
	}
}

func TestAppendToPreSizedAllocationFree(t *testing.T) {
	img := testImage(t)
	dst := make([]byte, 0, img.Size())
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		if dst, err = img.AppendTo(dst[:0]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("AppendTo with a pre-sized destination allocated %.1f times per run, want 0", allocs)
	}
}

func TestAppendToRejectsNonWireVariants(t *testing.T) {
	img := testImage(t)
	img.Entries[0].Compressed.Variant = 0 // Delta
	if _, err := img.AppendTo(nil); err == nil {
		t.Error("AppendTo accepted a non-int-DCT-W image")
	}
	if _, err := img.WriteTo(&bytes.Buffer{}); err == nil {
		t.Error("WriteTo accepted a non-int-DCT-W image")
	}
}

func TestDecodeImageBytesRoundTrip(t *testing.T) {
	img := testImage(t)
	wire, err := img.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeImageBytes(wire)
	if err != nil {
		t.Fatal(err)
	}
	// The decoded image must re-serialize to the identical bytes...
	back, err := got.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, wire) {
		t.Fatal("DecodeImageBytes round trip changed the wire bytes")
	}
	// ...agree with the streaming reader entry for entry...
	ref, err := ReadImage(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	if got.Machine != ref.Machine || got.WindowSize != ref.WindowSize || len(got.Entries) != len(ref.Entries) {
		t.Fatal("DecodeImageBytes header disagrees with ReadImage")
	}
	for i := range ref.Entries {
		a, b := &ref.Entries[i], &got.Entries[i]
		if a.Key != b.Key || a.Gate != b.Gate || a.Qubit != b.Qubit || a.Target != b.Target {
			t.Fatalf("entry %d metadata mismatch", i)
		}
		if len(a.Compressed.I.WindowWords) != len(b.Compressed.I.WindowWords) {
			t.Fatalf("entry %d rebuilt window metadata mismatch", i)
		}
	}
	// ...and carry identical derived stats (metadata rebuild parity).
	if got.Stats() != ref.Stats() {
		t.Errorf("stats mismatch: %+v vs %+v", got.Stats(), ref.Stats())
	}
}

func TestDecodeImageBytesRejectsHostileInput(t *testing.T) {
	img := testImage(t)
	wire, err := img.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     nil,
		"bad magic": []byte("NOPE00000000"),
		"truncated": wire[:len(wire)/2],
		"short hdr": wire[:6],
	}
	for name, b := range cases {
		if _, err := DecodeImageBytes(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// Every truncation point must error, never panic or over-read.
	for cut := 0; cut < len(wire)-1; cut += 7 {
		if _, err := DecodeImageBytes(wire[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
}
