package core

import (
	"math"
	"testing"

	"compaqt/internal/compress"
	"compaqt/internal/device"
	"compaqt/internal/quantum"
)

func TestCompressForGateFidelityMeetsTarget(t *testing.T) {
	m := device.Guadalupe()
	w := m.XPulse(2).Waveform
	target := 1e-6
	res, err := CompressForGateFidelity(w, GateTarget{Angle: math.Pi},
		compress.Options{Variant: compress.IntDCTW, WindowSize: 16}, target)
	if err != nil {
		t.Fatal(err)
	}
	if res.Infidelity > target {
		t.Errorf("infidelity %g exceeds target %g", res.Infidelity, target)
	}
	if res.Compressed.Ratio(compress.LayoutPacked) < 2 {
		t.Errorf("ratio %.2f collapsed while meeting fidelity", res.Compressed.Ratio(compress.LayoutPacked))
	}
	// Verify independently: integrate the certified waveform.
	d, err := res.Compressed.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	e := quantum.CoherentError1Q(w, d.Dequantize(), math.Pi)
	if inf := 1 - quantum.AvgGateFidelity2(e, quantum.I2()); inf > target {
		t.Errorf("independent check: infidelity %g", inf)
	}
}

func TestCompressForGateFidelityCR(t *testing.T) {
	m := device.Guadalupe()
	p, err := m.CXPulse(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CompressForGateFidelity(p.Waveform, GateTarget{TwoQubit: true, Angle: math.Pi / 4},
		compress.Options{Variant: compress.IntDCTW, WindowSize: 16}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Infidelity > 1e-6 {
		t.Errorf("CR infidelity %g", res.Infidelity)
	}
}

func TestCompressForGateFidelityUnreachable(t *testing.T) {
	m := device.Guadalupe()
	w := m.XPulse(0).Waveform
	// Quantization noise alone exceeds 1e-18.
	if _, err := CompressForGateFidelity(w, GateTarget{Angle: math.Pi},
		compress.Options{Variant: compress.IntDCTW, WindowSize: 16}, 1e-18); err == nil {
		t.Error("unreachable target should error")
	}
}

func TestCalibratingCompiler(t *testing.T) {
	m := device.Bogota()
	cc := &CalibratingCompiler{WindowSize: 16, TargetInfidelity: 1e-5}
	img, results, err := cc.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	wantGates := 2*m.Qubits + 2*len(m.Coupling) // X, SX per qubit; CX per directed pair
	if len(results) != wantGates {
		t.Errorf("calibrated %d gate pulses, want %d", len(results), wantGates)
	}
	for _, r := range results {
		if r.Infidelity > 1e-5 {
			t.Errorf("a calibrated pulse exceeds the infidelity budget: %g", r.Infidelity)
		}
	}
	s := img.Stats()
	if s.Entries != 3*m.Qubits+2*len(m.Coupling) {
		t.Errorf("image entries = %d", s.Entries)
	}
	// Certified compression still delivers real ratios.
	if s.PackedRatio < 3 {
		t.Errorf("certified packed ratio %.2f too low", s.PackedRatio)
	}
}

func TestCalibratingCompilerValidation(t *testing.T) {
	if _, _, err := (&CalibratingCompiler{WindowSize: 10, TargetInfidelity: 1e-5}).Compile(device.Bogota()); err == nil {
		t.Error("bad window should error")
	}
	if _, _, err := (&CalibratingCompiler{WindowSize: 16}).Compile(device.Bogota()); err == nil {
		t.Error("zero target should error")
	}
}

func TestGateFidelityTighterTargetLowerRatio(t *testing.T) {
	// The calibration knob works in the right direction: a tighter
	// infidelity budget can only reduce (or keep) the ratio.
	m := device.Guadalupe()
	w := m.XPulse(5).Waveform
	opts := compress.Options{Variant: compress.IntDCTW, WindowSize: 16}
	loose, err := CompressForGateFidelity(w, GateTarget{Angle: math.Pi}, opts, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := CompressForGateFidelity(w, GateTarget{Angle: math.Pi}, opts, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Compressed.Ratio(compress.LayoutPacked) > loose.Compressed.Ratio(compress.LayoutPacked)+1e-9 {
		t.Errorf("tighter target yielded higher ratio: %.2f vs %.2f",
			tight.Compressed.Ratio(compress.LayoutPacked), loose.Compressed.Ratio(compress.LayoutPacked))
	}
	if tight.Threshold > loose.Threshold {
		t.Error("tighter target should not raise the threshold")
	}
}
