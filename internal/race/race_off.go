//go:build !race

// Package race reports whether the race detector is compiled in.
// Allocation-count tests consult it: -race instruments sync.Pool with
// random cache bypasses, so steady-state zero-alloc assertions only
// hold in normal builds.
package race

// Enabled is true when the binary is built with -race.
const Enabled = false
