// Tests for the public persistent-store surface: WithStore must
// write every compile through to disk, survive a Service restart on
// the same directory with byte-identical images, and stay out of the
// way entirely when disabled.
package compaqt_test

import (
	"bytes"
	"context"
	"testing"

	"compaqt"
	"compaqt/qctrl"
)

func TestWithStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	m := qctrl.Bogota()

	svc, err := compaqt.New(compaqt.WithStore(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	img, err := svc.Compile(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	want, err := img.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	st := svc.StoreStats()
	if st.Puts != 1 || st.Names != 1 {
		t.Fatalf("store stats = %+v, want the compile written through once", st)
	}
	// Recompiling unchanged content is deduplicated by digest, not
	// re-published.
	if _, err := svc.Compile(ctx, m); err != nil {
		t.Fatal(err)
	}
	if st := svc.StoreStats(); st.Puts != 1 || st.PutDedups != 1 {
		t.Fatalf("store stats = %+v, want the recompile deduplicated", st)
	}
	if err := svc.Store().Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh Service on the same directory starts warm: the image is
	// served from disk, byte-identical, with zero compiles.
	svc2, err := compaqt.New(compaqt.WithStore(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Store().Close()
	if st := svc2.StoreStats(); st.Recovered != 1 {
		t.Fatalf("store stats = %+v, want 1 recovered binding", st)
	}
	blob, ok := svc2.Store().Get(m.Name)
	if !ok {
		t.Fatalf("Store().Get(%q) missed after restart", m.Name)
	}
	defer blob.Release()
	if !bytes.Equal(blob.Bytes(), want) {
		t.Fatal("restarted store serves different bytes than the original compile")
	}
	// The stored bytes decode to a playable image.
	back, err := compaqt.DecodeImageBytes(blob.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.Machine != m.Name || len(back.Entries) != len(img.Entries) {
		t.Fatalf("decoded %q/%d entries, want %q/%d",
			back.Machine, len(back.Entries), m.Name, len(img.Entries))
	}
}

func TestWithStoreDisabled(t *testing.T) {
	svc, err := compaqt.New(
		compaqt.WithStore(t.TempDir(), 0),
		compaqt.WithStoreDisabled(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if svc.Store() != nil {
		t.Fatal("WithStoreDisabled left a store configured")
	}
	if st := svc.StoreStats(); st != (compaqt.StoreStats{}) {
		t.Fatalf("disabled store stats = %+v, want zero", st)
	}
	if _, err := svc.Compile(context.Background(), qctrl.Bogota()); err != nil {
		t.Fatalf("compile without store: %v", err)
	}
}

func TestWithStoreValidation(t *testing.T) {
	if _, err := compaqt.New(compaqt.WithStore("", 0)); err == nil {
		t.Error("WithStore(\"\") accepted an empty directory")
	}
	if _, err := compaqt.New(compaqt.WithStore(t.TempDir(), -1)); err == nil {
		t.Error("WithStore accepted a negative size budget")
	}
}

func TestWithStoreBatchWriteThrough(t *testing.T) {
	dir := t.TempDir()
	svc, err := compaqt.New(compaqt.WithStore(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Store().Close()
	lib := qctrl.Bogota().Library()
	img, err := svc.CompileBatch(context.Background(), "batch-lib", lib)
	if err != nil {
		t.Fatal(err)
	}
	want, err := img.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	blob, ok := svc.Store().Get("batch-lib")
	if !ok {
		t.Fatal("CompileBatch result not written through to the store")
	}
	defer blob.Release()
	if !bytes.Equal(blob.Bytes(), want) {
		t.Fatal("stored batch image differs from the compiled one")
	}
}
