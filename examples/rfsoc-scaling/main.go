// RFSoC scaling: how many qubits (and surface-code logical qubits) can
// one RFSoC-based controller drive, uncompressed vs COMPAQT? This walks
// the paper's headline result (Fig. 2c, Table V, Fig. 17b): the BRAM
// bandwidth wall caps the baseline near 36 qubits, and compressed
// waveform memory lifts it ~5.3x.
package main

import (
	"fmt"
	"log"

	"compaqt/qctrl"
)

func main() {
	m := qctrl.Guadalupe()
	rfsoc := qctrl.QICKRFSoC(m)

	capQ := rfsoc.QubitsByCapacity(1)
	fmt.Printf("on-chip capacity alone would allow %d qubits\n", capQ)

	designs := []struct {
		name     string
		design   qctrl.Design
		capRatio float64
	}{
		{"uncompressed baseline", qctrl.Baseline(), 1},
		{"COMPAQT WS=8", qctrl.COMPAQT(8), 6.5},
		{"COMPAQT WS=16", qctrl.COMPAQT(16), 6.5},
	}
	var base int
	for i, d := range designs {
		rc := rfsoc.WithDesign(d.design)
		q, err := rc.QubitsByBandwidth()
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base = q
		}
		l17, err := rc.LogicalQubits(17, d.capRatio)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %3d qubits (%.2fx)  -> %2d surface-17 logical qubits\n",
			d.name, q, float64(q)/float64(base), l17)
	}

	fmt.Println()
	fmt.Println("the bandwidth wall: BRAM ports per qubit channel")
	fmt.Printf("  DAC/fabric clock ratio: %dx\n", rfsoc.Mem.ClockRatio())
	fmt.Printf("  banks/channel uncompressed: %d\n", rfsoc.Mem.BanksPerChannelUncompressed())
	b8, _ := rfsoc.Mem.BanksPerChannelCompressed(8, 3)
	b16, _ := rfsoc.Mem.BanksPerChannelCompressed(16, 3)
	fmt.Printf("  banks/channel WS=8: %d, WS=16: %d\n", b8, b16)
}
