// RB fidelity: does lossy waveform compression hurt gate quality? This
// reproduces the paper's Fig. 9 experiment: two-qubit randomized
// benchmarking on a Guadalupe-class device, with the compression-
// induced coherent errors obtained by integrating the original vs
// decompressed pulse envelopes.
package main

import (
	"fmt"
	"log"
	"math"

	"compaqt/codec"
	"compaqt/fidelity"
	"compaqt/qctrl"
	"compaqt/waveform"
)

func main() {
	m := qctrl.Guadalupe()

	// Baseline: device noise only.
	base := fidelity.DefaultRB((m.EPC2Q/0.75-4.9*3e-4)/1.5, 42)
	rBase, err := fidelity.RunRB(base)
	if err != nil {
		log.Fatal(err)
	}

	// Compressed: add the coherent error of int-DCT-W WS=16 round trips
	// on the CR and SX pulses of the RB pair.
	cdc, err := codec.New("intdct-w", codec.Params{Window: 16})
	if err != nil {
		log.Fatal(err)
	}
	comp := base
	comp.Seed = 43
	cr, err := m.CXPulse(0, 1)
	if err != nil {
		log.Fatal(err)
	}
	crRT := roundTrip(cdc, cr.Waveform)
	comp.CoherentCX = fidelity.CoherentErrorCR(cr.Waveform, crRT, math.Pi/4)
	sx := m.SXPulse(0)
	comp.Coherent1Q = fidelity.CoherentError1Q(sx.Waveform, roundTrip(cdc, sx.Waveform), math.Pi/2)
	rComp, err := fidelity.RunRB(comp)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("two-qubit RB on", m.Name)
	fmt.Println("m      baseline  int-DCT-W")
	for i, p := range rBase.Points {
		fmt.Printf("%-6d %.4f    %.4f\n", p.Length, p.Survival, rComp.Points[i].Survival)
	}
	fmt.Printf("\nfidelity: baseline %.3f (EPC %.2e), compressed %.3f (EPC %.2e)\n",
		rBase.Fidelity, rBase.EPC, rComp.Fidelity, rComp.EPC)
	fmt.Println("=> compression is fidelity-neutral within run-to-run variation")
}

// roundTrip encodes and decodes an envelope through the codec,
// returning the distorted waveform the DAC would actually play.
func roundTrip(cdc codec.Codec, w *waveform.Waveform) *waveform.Waveform {
	c, err := cdc.Encode(w.Quantize())
	if err != nil {
		log.Fatal(err)
	}
	d, err := cdc.Decode(c)
	if err != nil {
		log.Fatal(err)
	}
	return d.Dequantize()
}
