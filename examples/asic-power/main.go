// ASIC power: the cryogenic design point (Figs. 18-19). A 4K controller
// lives under the dilution refrigerator's "power wall"; this example
// streams a cross-resonance waveform and a flat-top pulse through the
// uncompressed, compressed, and adaptive designs and prints the power
// budget each one needs.
package main

import (
	"fmt"
	"log"

	"compaqt/qctrl"
	"compaqt/waveform"
)

func main() {
	m := qctrl.Guadalupe()

	cr, err := m.CXPulse(0, 1)
	if err != nil {
		log.Fatal(err)
	}
	flat := waveform.GaussianSquare("flat-top-100ns", m.SampleRate, waveform.GaussianSquareParams{
		Amp: 0.4, Duration: 100e-9, Width: 64e-9, Sigma: 4e-9, Angle: 0.6,
	})

	adaptive16 := qctrl.COMPAQT(16)
	adaptive16.Adaptive = true
	designs := []struct {
		name string
		d    qctrl.Design
	}{
		{"uncompressed", qctrl.Baseline()},
		{"COMPAQT WS=8", qctrl.COMPAQT(8)},
		{"COMPAQT WS=16", qctrl.COMPAQT(16)},
		{"COMPAQT WS=16 + adaptive", adaptive16},
	}

	for _, workload := range []struct {
		name string
		w    *waveform.Waveform
	}{
		{"cross-resonance (CX) tone", cr.Waveform},
		{"100 ns flat-top", flat},
	} {
		fmt.Printf("streaming %s:\n", workload.name)
		fmt.Printf("  %-26s %8s %8s %8s %8s\n", "design", "mem mW", "idct mW", "dac mW", "total")
		var base float64
		for i, d := range designs {
			p, err := qctrl.NewASIC(m, d.d).Power(workload.w)
			if err != nil {
				log.Fatal(err)
			}
			if i == 0 {
				base = p.TotalW()
			}
			fmt.Printf("  %-26s %8.2f %8.2f %8.2f %8.2f  (%.1fx)\n",
				d.name, p.MemoryW*1e3, p.IDCTW*1e3, p.DACW*1e3, p.TotalW()*1e3,
				base/p.TotalW())
		}
		fmt.Println()
	}
}
