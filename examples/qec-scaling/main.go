// QEC scaling: the end-game workload (Section VII-C). Surface-code
// syndrome extraction drives >80% of physical qubits concurrently,
// cycle after cycle, which is why quantum error correction — not NISQ
// circuits — defines the controller's bandwidth requirement. This
// example schedules syndrome cycles for the paper's three patches,
// prints their bandwidth demand against the RFSoC wall, and shows how
// many logical qubits each controller design sustains.
package main

import (
	"fmt"
	"log"

	"compaqt/circuit"
	"compaqt/qctrl"
	"compaqt/qec"
)

func main() {
	m := qctrl.Guadalupe()
	rfsoc := qctrl.DefaultRFSoC()

	fmt.Println("syndrome-extraction bandwidth demand (4 rounds):")
	patches := []*qec.Patch{qec.Surface17(), qec.Surface25(), qec.Surface81()}
	for _, p := range patches {
		c := circuit.Decompose(p.SyndromeCircuit(4))
		s, err := circuit.ScheduleASAP(c, m.Latency)
		if err != nil {
			log.Fatal(err)
		}
		bw := s.MemoryBandwidth(m)
		driven := s.PeakDrivenQubits()
		fmt.Printf("  %-14s %3d qubits: peak %7.1f GB/s, avg %7.1f GB/s, %d/%d qubits driven at peak\n",
			p.Name, p.Qubits, bw.PeakBps/1e9, bw.AvgBps/1e9, driven, p.Qubits)
	}
	fmt.Printf("  RFSoC aggregate BRAM bandwidth: %.0f GB/s\n\n", rfsoc.StreamBandwidth()/1e9)

	fmt.Println("logical qubits per RFSoC controller:")
	qick := qctrl.QICKRFSoC(m)
	designs := []struct {
		name     string
		d        qctrl.Design
		capRatio float64
	}{
		{"uncompressed", qctrl.Baseline(), 1},
		{"COMPAQT WS=8", qctrl.COMPAQT(8), 6.5},
		{"COMPAQT WS=16", qctrl.COMPAQT(16), 6.5},
	}
	fmt.Printf("  %-16s %12s %12s %12s\n", "design", "phys qubits", "surface-17", "surface-25")
	for _, d := range designs {
		rc := qick.WithDesign(d.d)
		q, err := rc.QubitsByBandwidth()
		if err != nil {
			log.Fatal(err)
		}
		l17, err := rc.LogicalQubits(17, d.capRatio)
		if err != nil {
			log.Fatal(err)
		}
		l25, err := rc.LogicalQubits(25, d.capRatio)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s %12d %12d %12d\n", d.name, q, l17, l25)
	}
}
