// serve-quickstart drives the compile server end to end from the typed
// client: it starts an in-process server on a loopback port, submits a
// machine's calibrated pulse library as one dedup-aware batch, fetches
// the stored wire-format image back, and plays an entry through the
// hardware decompression model locally.
//
// Against a remote deployment the server half disappears — point
// client.New at the service address and keep the rest.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"compaqt"
	"compaqt/client"
	"compaqt/internal/server"
	"compaqt/qctrl"
)

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Server half: compile service with a content-addressed cache,
	// bound to an ephemeral loopback port.
	srv, err := server.New(server.Config{CacheSize: 1024})
	if err != nil {
		log.Fatal(err)
	}
	addrc := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- srv.Run(ctx, "127.0.0.1:0", func(a net.Addr) { addrc <- a })
	}()
	addr := <-addrc

	// Client half: everything below talks HTTP.
	cl := client.New("http://" + addr.String())
	if err := cl.Health(ctx); err != nil {
		log.Fatal(err)
	}

	// Submit ibmq_guadalupe's library as one batch, twice over — the
	// duplicates are deduplicated server-side and the second submission
	// is served from the compile cache.
	m := qctrl.Guadalupe()
	lib := m.Library()
	specs := make([]client.PulseSpec, 0, 2*len(lib))
	for range 2 {
		for _, p := range lib {
			specs = append(specs, client.FromPulse(p))
		}
	}
	start := time.Now()
	batch, err := cl.CompileBatch(ctx, client.BatchRequest{
		Image:  m.Name,
		Pulses: specs,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d entries (%d distinct pulses) in %v: R = %.2fx packed\n",
		len(batch.Entries), len(lib), time.Since(start).Round(time.Millisecond),
		batch.Stats.PackedRatio)

	// Fetch the stored image — CPQT wire format, byte-identical to an
	// in-process compile — and play a pulse through the local engine.
	img, err := cl.Image(ctx, m.Name)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := compaqt.New()
	if err != nil {
		log.Fatal(err)
	}
	svc.Use(img)
	out, st, err := svc.Play(ctx, "X_q3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("played X_q3: %d samples, %.2fx bandwidth boost\n",
		out.Samples(), float64(st.SamplesOut)/float64(st.MemWords))

	// Server-side metrics: the second library submission hit the cache.
	stats, err := cl.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server: %d requests, %d pulses in, %d encodes, %d cache entries\n",
		stats.Requests.Total, stats.Compile.Pulses, stats.Compile.Encodes,
		stats.Cache.Entries)

	cancel() // SIGTERM equivalent: drain and stop
	<-done
}
