// Quickstart: compress a machine's calibrated pulse library with the
// public compaqt API, stream one pulse back through the hardware
// decompression engine model, and print the compression ratio,
// reconstruction error and bandwidth boost — the whole COMPAQT story
// in a dozen lines.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	"compaqt"
	"compaqt/codec"
	"compaqt/qctrl"
	"compaqt/waveform"
)

func main() {
	// A 16-qubit IBM-class machine with seeded per-qubit calibrations.
	m := qctrl.Guadalupe()

	// A compile/playback service: windowed integer DCT, window 16,
	// pulses fanned out across all cores.
	svc, err := compaqt.New(
		compaqt.WithCodec("intdct-w"),
		compaqt.WithWindow(16),
		compaqt.WithParallelism(runtime.NumCPU()),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Compile the machine's full library (X, SX, CX, readout for every
	// qubit and coupled pair) into a waveform-memory image.
	img, err := svc.Compile(context.Background(), m)
	if err != nil {
		log.Fatal(err)
	}
	s := img.Stats()
	fmt.Printf("compiled %d pulses on %s: %d -> %d words, R = %.2fx packed / %.2fx uniform\n",
		s.Entries, m.Name, s.OriginalWords, s.PackedWords, s.PackedRatio, s.UniformRatio)

	// Play qubit 3's pi pulse back through the decompression pipeline
	// model (Fig. 10): multiplierless shift-add IDCT, one window per
	// fabric cycle.
	key := m.XPulse(3).Key()
	out, stats, err := svc.Play(context.Background(), key)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("played %s: %d cycles, %d words fetched, %d IDCT ops\n",
		key, stats.Cycles, stats.MemWords, stats.IDCTOps)
	fmt.Printf("bandwidth boost: %.2fx samples per fetched word\n",
		float64(stats.SamplesOut)/float64(stats.MemWords))

	// Reconstruction error against the original quantized envelope.
	fixed := m.XPulse(3).Waveform.Quantize()
	fmt.Printf("reconstruction MSE: %.3g (unit amplitude)\n", waveform.MSEFixed(fixed, out))

	// Every registered codec is one option away.
	fmt.Printf("registered codecs: %v\n", codec.Names())
}
