// Quickstart: compress one calibrated qubit control pulse with
// COMPAQT's int-DCT-W pipeline, decompress it through the hardware
// engine model, and print the compression ratio, reconstruction error
// and bandwidth boost — the whole COMPAQT story on a single waveform.
package main

import (
	"fmt"
	"log"

	"compaqt/internal/compress"
	"compaqt/internal/device"
	"compaqt/internal/engine"
	"compaqt/internal/wave"
)

func main() {
	// A 16-qubit IBM-class machine with seeded per-qubit calibrations.
	m := device.Guadalupe()

	// Qubit 3's pi pulse: a DRAG envelope at 4.54 GS/s.
	pulse := m.XPulse(3)
	fixed := pulse.Waveform.Quantize()
	fmt.Printf("pulse %s: %d samples, %d bytes uncompressed\n",
		pulse.Key(), fixed.Samples(), fixed.Bits()/8)

	// Compile-time compression (software side, Fig. 6).
	c, err := compress.Compress(fixed, compress.Options{
		Variant:    compress.IntDCTW,
		WindowSize: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed: %d words -> R = %.2fx packed, %.2fx uniform (worst window %d)\n",
		c.Words(compress.LayoutPacked),
		c.Ratio(compress.LayoutPacked),
		c.Ratio(compress.LayoutUniform),
		c.MaxWindowWords())

	// Runtime decompression (hardware side, Fig. 10): multiplierless
	// shift-add IDCT, one window per fabric cycle.
	eng, err := engine.New(16)
	if err != nil {
		log.Fatal(err)
	}
	out, stats, err := eng.Run(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline: %d cycles, %d words fetched, %d IDCT ops\n",
		stats.Cycles, stats.MemWords, stats.IDCTOps)
	fmt.Printf("bandwidth boost: %.2fx samples per fetched word\n",
		float64(stats.SamplesOut)/float64(stats.MemWords))
	fmt.Printf("reconstruction MSE: %.3g (unit amplitude)\n", wave.MSEFixed(fixed, out))
}
