package compaqt

import (
	"context"
	"fmt"
	"io"
	"sync"

	"compaqt/codec"
	"compaqt/internal/core"
	"compaqt/qctrl"
	"compaqt/waveform"
)

// Image is a compiled waveform-memory image: the compressed pulse
// library that is loaded onto the controller after a calibration cycle.
type Image = core.Image

// Entry is one compressed pulse in an image.
type Entry = core.Entry

// Stats aggregates an image's compression statistics.
type Stats = core.Stats

// ReadImage deserializes an image written by Image.WriteTo or
// Service.CompileTo.
var ReadImage = core.ReadImage

// Service is the compile/playback front end of the library. It pairs a
// configured codec with a machine-independent compile pipeline (fanned
// out across goroutines) and a playback path through the hardware
// decompression-engine model.
//
// A Service is safe for concurrent use: compilation shares the
// stateless codec, and playback state (the active image and the engine
// cache) is guarded internally.
type Service struct {
	cfg config
	cdc codec.Codec

	mu      sync.RWMutex
	img     *Image
	engines map[int]*qctrl.Engine
}

// New builds a Service from functional options. With no options it
// compiles with int-DCT-W, window 16, the default threshold, and
// NumCPU-wide parallelism.
func New(opts ...Option) (*Service, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	cdc, err := codec.New(cfg.codecName, cfg.params)
	if err != nil {
		return nil, err
	}
	if cfg.targetMSE > 0 {
		if cfg.params.Threshold != 0 {
			return nil, fmt.Errorf("compaqt: WithThreshold and a fidelity/MSE target are mutually exclusive")
		}
		if _, ok := cdc.(codec.FidelityEncoder); !ok {
			return nil, fmt.Errorf("compaqt: codec %q does not support fidelity targeting", cdc.Name())
		}
	}
	return &Service{cfg: cfg, cdc: cdc, engines: map[int]*qctrl.Engine{}}, nil
}

// Codec returns the service's configured compression backend.
func (s *Service) Codec() codec.Codec { return s.cdc }

// Parallelism returns the compile fan-out width.
func (s *Service) Parallelism() int { return s.cfg.parallelism }

// Compile compresses the machine's full calibrated pulse library into
// an image, fanning pulses out across the configured number of
// goroutines. The result is deterministic: entries appear in library
// order regardless of parallelism. The image is also installed as the
// service's active playback image.
func (s *Service) Compile(ctx context.Context, m *qctrl.Machine) (*Image, error) {
	return s.CompilePulses(ctx, m.Name, m.Library())
}

// CompilePulses compresses an explicit pulse list under the given
// library name.
func (s *Service) CompilePulses(ctx context.Context, name string, pulses []*qctrl.Pulse) (*Image, error) {
	img, err := s.compile(ctx, name, pulses)
	if err != nil {
		return nil, err
	}
	s.Use(img)
	return img, nil
}

// CompileTo compiles the machine's library and streams the serialized
// image to w, returning the number of bytes written.
func (s *Service) CompileTo(ctx context.Context, m *qctrl.Machine, w io.Writer) (int64, error) {
	img, err := s.Compile(ctx, m)
	if err != nil {
		return 0, err
	}
	return img.WriteTo(w)
}

// OpenImage deserializes an image from r and installs it as the
// service's active playback image.
func (s *Service) OpenImage(r io.Reader) (*Image, error) {
	img, err := core.ReadImage(r)
	if err != nil {
		return nil, err
	}
	s.Use(img)
	return img, nil
}

// Use installs img as the active playback image.
func (s *Service) Use(img *Image) {
	s.mu.Lock()
	s.img = img
	s.mu.Unlock()
}

// Image returns the active playback image, or nil if none is loaded.
func (s *Service) Image() *Image {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.img
}

// Play streams one entry of the active image through the hardware
// decompression pipeline model, returning the reconstructed waveform
// and the engine activity statistics.
func (s *Service) Play(ctx context.Context, key string) (*waveform.Fixed, qctrl.EngineStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, qctrl.EngineStats{}, err
	}
	img := s.Image()
	if img == nil {
		return nil, qctrl.EngineStats{}, fmt.Errorf("compaqt: no image loaded (Compile or OpenImage first)")
	}
	e, err := img.Lookup(key)
	if err != nil {
		return nil, qctrl.EngineStats{}, err
	}
	if img.WindowSize == 0 {
		return nil, qctrl.EngineStats{}, fmt.Errorf(
			"compaqt: image %q was not compiled with a windowed codec; playback requires intdct-w", img.Machine)
	}
	eng, err := s.engine(img.WindowSize)
	if err != nil {
		return nil, qctrl.EngineStats{}, err
	}
	return eng.Run(e.Compressed)
}

// engine returns the cached decompression engine for a window size,
// building it on first use. Engines are immutable and shared across
// goroutines.
func (s *Service) engine(ws int) (*qctrl.Engine, error) {
	s.mu.RLock()
	eng := s.engines[ws]
	s.mu.RUnlock()
	if eng != nil {
		return eng, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if eng = s.engines[ws]; eng != nil {
		return eng, nil
	}
	eng, err := qctrl.NewEngine(ws)
	if err != nil {
		return nil, err
	}
	s.engines[ws] = eng
	return eng, nil
}

// compile runs the per-pulse fan-out: a bounded worker pool pulls
// pulse indices from a feed channel and writes entries by index, so
// the output order is the library order at any parallelism. The first
// error cancels the remaining work.
func (s *Service) compile(ctx context.Context, name string, pulses []*qctrl.Pulse) (*Image, error) {
	img := &Image{Machine: name}
	if len(pulses) == 0 {
		return img, nil
	}
	workers := s.cfg.parallelism
	if workers > len(pulses) {
		workers = len(pulses)
	}

	entries := make([]Entry, len(pulses))
	if workers <= 1 {
		for i, p := range pulses {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			e, err := s.compileOne(p)
			if err != nil {
				return nil, err
			}
			entries[i] = e
		}
		return s.finish(img, entries), nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	feed := make(chan int)
	go func() {
		defer close(feed)
		for i := range pulses {
			select {
			case feed <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				e, err := s.compileOne(pulses[i])
				if err != nil {
					errOnce.Do(func() {
						firstErr = err
						cancel()
					})
					return
				}
				entries[i] = e
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.finish(img, entries), nil
}

// finish attaches the entries and stamps the image's window size from
// the compressed streams themselves: windowed variants record their
// window, non-windowed ones (delta, dict, dct-n) leave it 0, which
// marks the image as not playable through the hardware engine.
func (s *Service) finish(img *Image, entries []Entry) *Image {
	img.Entries = entries
	if len(entries) > 0 {
		img.WindowSize = entries[0].Compressed.WindowSize
	}
	return img
}

// compileOne compresses a single pulse through the configured codec,
// applying fidelity-aware tuning when a target is set.
func (s *Service) compileOne(p *qctrl.Pulse) (Entry, error) {
	f := p.Waveform.Quantize()
	var (
		cc  *codec.Compressed
		err error
	)
	if s.cfg.targetMSE > 0 {
		fe := s.cdc.(codec.FidelityEncoder) // checked in New
		cc, _, err = fe.EncodeWithTarget(f, s.cfg.targetMSE)
	} else {
		cc, err = s.cdc.Encode(f)
	}
	if err != nil {
		return Entry{}, fmt.Errorf("compaqt: compiling %s: %w", p.Key(), err)
	}
	return Entry{Key: p.Key(), Gate: p.Gate, Qubit: p.Qubit, Target: p.Target, Compressed: cc}, nil
}
