package compaqt

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"compaqt/codec"
	"compaqt/internal/cache"
	"compaqt/internal/core"
	"compaqt/internal/store"
	"compaqt/qctrl"
	"compaqt/waveform"
)

// Image is a compiled waveform-memory image: the compressed pulse
// library that is loaded onto the controller after a calibration cycle.
type Image = core.Image

// Entry is one compressed pulse in an image.
type Entry = core.Entry

// Stats aggregates an image's compression statistics.
type Stats = core.Stats

// ReadImage deserializes an image written by Image.WriteTo or
// Service.CompileTo.
var ReadImage = core.ReadImage

// DecodeImageBytes deserializes an image from an in-memory serialized
// form. It is the zero-copy fast path for callers that already hold
// the whole image in a byte slice (HTTP bodies, mmap'd files): every
// length field is validated against the bytes present before each
// exact-size stream allocation, with no intermediate reader buffering.
var DecodeImageBytes = core.DecodeImageBytes

// Service is the compile/playback front end of the library. It pairs a
// configured codec with a machine-independent compile pipeline (fanned
// out across goroutines) and a playback path through the hardware
// decompression-engine model.
//
// A Service is safe for concurrent use: compilation shares the
// stateless codec, the compile cache is internally striped, and
// playback state (the active image and the engine cache) is guarded
// internally.
type Service struct {
	cfg config
	cdc codec.Codec

	// cache, when non-nil, is the content-addressed compile cache
	// (WithCache): quantized waveforms are digested together with
	// fingerprint and looked up before the codec runs. Cached
	// Compressed values are immutable and shared across hits.
	cache *cache.LRU
	// fingerprint is the codec's stable cache identity (codec name +
	// params); it is folded into every content digest.
	fingerprint string

	// store, when non-nil, is the persistent content-addressed image
	// store (WithStore): every successful compile writes its serialized
	// image through, and the directory warm-restarts into the next
	// Service opened on it.
	store *store.Store

	// jobs feeds the persistent worker pool (see pool); poolOnce
	// starts the workers on first parallel compile.
	poolOnce sync.Once
	jobs     chan poolJob

	mu      sync.RWMutex
	img     *Image
	engines map[int]*qctrl.Engine
}

// New builds a Service from functional options. With no options it
// compiles with int-DCT-W, window 16, the default threshold, and
// NumCPU-wide parallelism.
func New(opts ...Option) (*Service, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	cdc, err := codec.New(cfg.codecName, cfg.params)
	if err != nil {
		return nil, err
	}
	if cfg.targetMSE > 0 {
		if cfg.params.Threshold != 0 {
			return nil, fmt.Errorf("compaqt: WithThreshold and a fidelity/MSE target are mutually exclusive")
		}
		if _, ok := cdc.(codec.FidelityEncoder); !ok {
			return nil, fmt.Errorf("compaqt: codec %q does not support fidelity targeting", cdc.Name())
		}
	}
	s := &Service{cfg: cfg, cdc: cdc, engines: map[int]*qctrl.Engine{}}
	s.fingerprint = codecFingerprint(cdc)
	if cfg.cacheSize > 0 {
		s.cache = cache.NewLRU(cfg.cacheSize)
	}
	if cfg.storeDir != "" {
		st, err := store.Open(cfg.storeDir, cfg.storeMaxBytes)
		if err != nil {
			return nil, err
		}
		if cfg.storeProbeEvery > 0 {
			st.SetProbeInterval(cfg.storeProbeEvery)
		}
		s.store = st
		// The cleanup must capture only the store — referencing s would
		// keep the Service reachable forever.
		runtime.AddCleanup(s, func(st *store.Store) { st.Close() }, st)
	}
	return s, nil
}

// codecFingerprint resolves a codec's cache identity: CacheKey for
// Fingerprinter implementations, the registry name otherwise. The name
// fallback is safe because a Service's cache and batch dedup never mix
// codec configurations — each Service holds exactly one codec instance.
func codecFingerprint(c codec.Codec) string {
	if f, ok := c.(codec.Fingerprinter); ok {
		return f.CacheKey()
	}
	return c.Name()
}

// Codec returns the service's configured compression backend.
func (s *Service) Codec() codec.Codec { return s.cdc }

// Parallelism returns the compile fan-out width.
func (s *Service) Parallelism() int { return s.cfg.parallelism }

// CacheStats is a snapshot of the compile cache's activity: hits,
// misses, evictions, resident entries, and the uncompressed bytes whose
// re-encoding the hits avoided.
type CacheStats = cache.Stats

// CacheStats reports compile-cache activity. It returns the zero Stats
// when the cache is disabled (the default — see WithCache).
func (s *Service) CacheStats() CacheStats {
	if s.cache == nil {
		return CacheStats{}
	}
	return s.cache.Stats()
}

// ImageStore is the persistent content-addressed image store behind
// WithStore: serialized images on disk, mmap-served, warm across
// restarts.
type ImageStore = store.Store

// StoreStats is a snapshot of the persistent image store's activity.
type StoreStats = store.Stats

// Store returns the service's persistent image store, or nil when
// WithStore was not configured. The store outlives compile calls: use
// Store().Get to serve stored wire bytes directly, Store().Close when
// tearing the Service down deliberately (an abandoned Service's store
// is closed by a runtime cleanup).
func (s *Service) Store() *ImageStore { return s.store }

// StoreStats reports persistent-store activity. It returns the zero
// Stats when the store is disabled (the default — see WithStore).
func (s *Service) StoreStats() StoreStats {
	if s.store == nil {
		return StoreStats{}
	}
	return s.store.Stats()
}

// publishStored writes a compiled image through to the persistent
// store. Best-effort by design: persistence failures degrade the store
// (visible via Store().Healthy and the serving layer's health report)
// without failing the compile that produced the image.
func (s *Service) publishStored(name string, img *Image) {
	if s.store == nil || img == nil {
		return
	}
	_ = s.store.PutImage(name, img)
}

// Compile compresses the machine's full calibrated pulse library into
// an image, fanning pulses out across the configured number of
// goroutines. The result is deterministic: entries appear in library
// order regardless of parallelism. The image is also installed as the
// service's active playback image.
func (s *Service) Compile(ctx context.Context, m *qctrl.Machine) (*Image, error) {
	return s.CompilePulses(ctx, m.Name, m.Library())
}

// CompilePulses compresses an explicit pulse list under the given
// library name.
func (s *Service) CompilePulses(ctx context.Context, name string, pulses []*qctrl.Pulse) (*Image, error) {
	start := time.Now()
	img, hits, err := s.compile(ctx, name, pulses)
	s.observe(CompileEvent{
		Library:   name,
		Pulses:    len(pulses),
		Encodes:   len(pulses) - hits,
		CacheHits: hits,
		Duration:  time.Since(start),
		Err:       err,
	})
	if err != nil {
		return nil, err
	}
	s.Use(img)
	s.publishStored(name, img)
	return img, nil
}

// CompileTo compiles the machine's library and streams the serialized
// image to w, returning the number of bytes written.
func (s *Service) CompileTo(ctx context.Context, m *qctrl.Machine, w io.Writer) (int64, error) {
	img, err := s.Compile(ctx, m)
	if err != nil {
		return 0, err
	}
	return img.WriteTo(w)
}

// OpenImage deserializes an image from r and installs it as the
// service's active playback image.
func (s *Service) OpenImage(r io.Reader) (*Image, error) {
	img, err := core.ReadImage(r)
	if err != nil {
		return nil, err
	}
	s.Use(img)
	return img, nil
}

// Use installs img as the active playback image.
func (s *Service) Use(img *Image) {
	s.mu.Lock()
	s.img = img
	s.mu.Unlock()
}

// Image returns the active playback image, or nil if none is loaded.
func (s *Service) Image() *Image {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.img
}

// Play streams one entry of the active image through the hardware
// decompression pipeline model, returning the reconstructed waveform
// and the engine activity statistics.
func (s *Service) Play(ctx context.Context, key string) (*waveform.Fixed, qctrl.EngineStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, qctrl.EngineStats{}, err
	}
	img := s.Image()
	if img == nil {
		return nil, qctrl.EngineStats{}, fmt.Errorf("compaqt: no image loaded (Compile or OpenImage first)")
	}
	e, err := img.Lookup(key)
	if err != nil {
		return nil, qctrl.EngineStats{}, err
	}
	if img.WindowSize == 0 {
		return nil, qctrl.EngineStats{}, fmt.Errorf(
			"compaqt: image %q was not compiled with a windowed codec; playback requires intdct-w", img.Machine)
	}
	eng, err := s.engine(img.WindowSize)
	if err != nil {
		return nil, qctrl.EngineStats{}, err
	}
	return eng.Run(e.Compressed)
}

// engine returns the cached decompression engine for a window size,
// building it on first use. Engines are immutable and shared across
// goroutines.
func (s *Service) engine(ws int) (*qctrl.Engine, error) {
	s.mu.RLock()
	eng := s.engines[ws]
	s.mu.RUnlock()
	if eng != nil {
		return eng, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if eng = s.engines[ws]; eng != nil {
		return eng, nil
	}
	eng, err := qctrl.NewEngine(ws)
	if err != nil {
		return nil, err
	}
	s.engines[ws] = eng
	return eng, nil
}

// compile runs the per-pulse fan-out over the worker pool: entries are
// written by index, so the output order is the library order at any
// parallelism. The second result counts cache-served pulses.
func (s *Service) compile(ctx context.Context, name string, pulses []*qctrl.Pulse) (*Image, int, error) {
	img := &Image{Machine: name}
	if len(pulses) == 0 {
		return img, 0, nil
	}
	// Single-pulse fast path (the serving layer's steady state): no
	// closure, no shared counter, no pool round trip.
	if len(pulses) == 1 {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		e, hit, err := s.compileOne(pulses[0])
		if err != nil {
			return nil, 0, err
		}
		hits := 0
		if hit {
			hits = 1
		}
		return s.finish(img, []Entry{e}), hits, nil
	}
	var hits atomic.Int64
	entries := make([]Entry, len(pulses))
	err := s.runPool(ctx, len(pulses), func(i int) error {
		e, hit, err := s.compileOne(pulses[i])
		if err != nil {
			return err
		}
		if hit {
			hits.Add(1)
		}
		entries[i] = e
		return nil
	})
	if err != nil {
		return nil, int(hits.Load()), err
	}
	return s.finish(img, entries), int(hits.Load()), nil
}

// CompileBatch compresses an explicit pulse list like CompilePulses,
// but deduplicates identical pulse content before any encoder runs:
// every distinct waveform (quantized samples + codec identity/params +
// fidelity target) is compressed exactly once — served from the compile
// cache when one is enabled — and all duplicates reuse that result.
// The returned image's entries align one-to-one with pulses, in input
// order, and each is byte-identical to what a per-pulse Compile would
// have produced. Unique work is fanned out across the configured worker
// pool; the image is installed as the active playback image.
func (s *Service) CompileBatch(ctx context.Context, name string, pulses []*qctrl.Pulse) (*Image, error) {
	start := time.Now()
	img, encodes, hits, err := s.compileBatch(ctx, name, pulses)
	s.observe(CompileEvent{
		Library:   name,
		Pulses:    len(pulses),
		Encodes:   encodes,
		CacheHits: hits,
		Batch:     true,
		Duration:  time.Since(start),
		Err:       err,
	})
	if err == nil {
		s.publishStored(name, img)
	}
	return img, err
}

// compileBatch is CompileBatch's worker; it additionally reports the
// encoder invocations run and the unique digests the cache resolved.
func (s *Service) compileBatch(ctx context.Context, name string, pulses []*qctrl.Pulse) (*Image, int, int, error) {
	img := &Image{Machine: name}
	if len(pulses) == 0 {
		s.Use(img)
		return img, 0, 0, nil
	}

	// Quantize and digest every input in parallel. The digest is the
	// dedup key whether or not the cross-call cache is enabled.
	// Pointer-identical pulses (callers often build batches by
	// replicating a library slice) share one quantize+digest.
	fixed := make([]*waveform.Fixed, len(pulses))
	keys := make([]cache.Key, len(pulses))
	owner := make([]int, len(pulses))
	seen := make(map[*qctrl.Pulse]int, len(pulses))
	uniq := make([]int, 0, len(pulses))
	for i, p := range pulses {
		if j, ok := seen[p]; ok {
			owner[i] = j
			continue
		}
		seen[p] = i
		owner[i] = i
		uniq = append(uniq, i)
	}
	err := s.runPool(ctx, len(uniq), func(j int) error {
		i := uniq[j]
		fixed[i] = pulses[i].Waveform.Quantize()
		keys[i] = cache.DigestWaveform(s.fingerprint, s.cfg.targetMSE, fixed[i])
		return nil
	})
	if err != nil {
		return nil, 0, 0, err
	}
	for i, j := range owner {
		if j != i {
			fixed[i], keys[i] = fixed[j], keys[j]
		}
	}

	// Unique digests in first-seen order; rep maps each digest to the
	// index of its first occurrence (the representative that is encoded).
	rep := make(map[cache.Key]int, len(pulses))
	order := make([]cache.Key, 0, len(pulses))
	for i, k := range keys {
		if _, ok := rep[k]; !ok {
			rep[k] = i
			order = append(order, k)
		}
	}

	// Resolve unique digests: cache hits first (one lookup per digest,
	// not per duplicate), then fan the remaining encodes out.
	encoded := make(map[cache.Key]*codec.Compressed, len(order))
	work := order
	if s.cache != nil {
		work = work[:0:0]
		for _, k := range order {
			if v, ok := s.cache.Get(k); ok {
				encoded[k] = v.(*codec.Compressed)
			} else {
				work = append(work, k)
			}
		}
	}
	hits := len(order) - len(work)
	results := make([]*codec.Compressed, len(work))
	err = s.runPool(ctx, len(work), func(j int) error {
		i := rep[work[j]]
		cc, err := s.encode(fixed[i])
		if err != nil {
			return fmt.Errorf("compaqt: compiling %s: %w", pulses[i].Key(), err)
		}
		results[j] = cc
		return nil
	})
	if err != nil {
		return nil, 0, hits, err
	}
	for j, k := range work {
		encoded[k] = results[j]
		if s.cache != nil {
			s.cache.Add(k, results[j], int64(4*fixed[rep[k]].Samples()))
		}
	}

	// Reassemble per-input entries in input order, restoring each
	// pulse's own name on shared encodings.
	entries := make([]Entry, len(pulses))
	for i, p := range pulses {
		entries[i] = Entry{
			Key:        p.Key(),
			Gate:       p.Gate,
			Qubit:      p.Qubit,
			Target:     p.Target,
			Compressed: withName(encoded[keys[i]], fixed[i].Name),
		}
	}
	s.finish(img, entries)
	s.Use(img)
	return img, len(work), hits, nil
}

// poolJob is one index of one runPool call, as carried to a persistent
// worker.
type poolJob struct {
	i   int
	run *poolRun
}

// poolRun is the shared state of one runPool invocation: many jobs,
// one context, one first-error slot.
type poolRun struct {
	ctx    context.Context
	cancel context.CancelFunc
	fn     func(i int) error

	wg      sync.WaitGroup
	errOnce sync.Once
	err     error
}

// do executes one index, recording the first error and canceling the
// run's remaining jobs. Jobs of a canceled run drain without invoking
// fn, so a failed or abandoned compile releases its workers quickly.
func (r *poolRun) do(i int) {
	defer r.wg.Done()
	if r.ctx.Err() != nil {
		return
	}
	if err := r.fn(i); err != nil {
		r.errOnce.Do(func() {
			r.err = err
			r.cancel()
		})
	}
}

// pool returns the Service's persistent worker pool, starting it on
// first use. The workers live for the Service's lifetime: compile
// calls stop paying goroutine spawn/teardown per request, and — more
// importantly for steady-state allocation behavior — each worker's
// sync.Pool-backed kernel scratch (internal/compress, internal/dct)
// stays cached per P across requests instead of being re-warmed by
// fresh goroutines. A runtime cleanup closes the feed when the Service
// becomes unreachable, so abandoned services do not leak workers.
func (s *Service) pool() chan<- poolJob {
	s.poolOnce.Do(func() {
		jobs := make(chan poolJob, s.cfg.parallelism)
		for w := 0; w < s.cfg.parallelism; w++ {
			go func() {
				for job := range jobs {
					job.run.do(job.i)
				}
			}()
		}
		s.jobs = jobs
		// The cleanup must capture only the channel — referencing s
		// would keep the Service reachable forever.
		runtime.AddCleanup(s, func(ch chan poolJob) { close(ch) }, jobs)
	})
	return s.jobs
}

// runPool runs fn(0..n-1) across the configured parallelism: the
// persistent per-Service worker pool pulls indices from the shared job
// feed, so callers writing results by index get deterministic output
// at any width. The first error cancels the remaining work. Concurrent
// runPool calls share the same workers; jobs interleave, each run
// completes independently.
func (s *Service) runPool(ctx context.Context, n int, fn func(i int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	if s.cfg.parallelism <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	run := &poolRun{ctx: ctx, cancel: cancel, fn: fn}
	run.wg.Add(n)
	jobs := s.pool()
	submitted := n
	for i := 0; i < n; i++ {
		select {
		case jobs <- poolJob{i: i, run: run}:
		case <-ctx.Done():
			submitted = i
		}
		if submitted != n {
			break
		}
	}
	// Un-count the jobs a cancellation kept from being submitted, then
	// wait for the in-flight remainder to drain.
	run.wg.Add(submitted - n)
	run.wg.Wait()
	if run.err != nil {
		return run.err
	}
	return ctx.Err()
}

// finish attaches the entries and stamps the image's window size from
// the compressed streams themselves: windowed variants record their
// window, non-windowed ones (delta, dict, dct-n) leave it 0, which
// marks the image as not playable through the hardware engine.
func (s *Service) finish(img *Image, entries []Entry) *Image {
	img.Entries = entries
	if len(entries) > 0 {
		img.WindowSize = entries[0].Compressed.WindowSize
	}
	return img
}

// fixedPool recycles quantization buffers on the cache-hit path: a
// served hit never hands the quantized waveform to a codec, so the
// buffers can be reused as soon as the digest lookup resolves. Misses
// leave their Fixed to the garbage collector — a registered codec may
// in principle retain what Encode receives.
var fixedPool = sync.Pool{New: func() any { return new(waveform.Fixed) }}

// compileOne compresses a single pulse through the configured codec
// (by way of the compile cache, when enabled). The second result
// reports whether the cache served the encoding.
func (s *Service) compileOne(p *qctrl.Pulse) (Entry, bool, error) {
	f := fixedPool.Get().(*waveform.Fixed)
	p.Waveform.QuantizeInto(f)
	cc, hit, err := s.encodeCached(f)
	if hit {
		fixedPool.Put(f)
	}
	if err != nil {
		return Entry{}, false, fmt.Errorf("compaqt: compiling %s: %w", p.Key(), err)
	}
	return Entry{Key: p.Key(), Gate: p.Gate, Qubit: p.Qubit, Target: p.Target, Compressed: cc}, hit, nil
}

// encodeCached encodes f, consulting the content-addressed cache when
// one is enabled. A hit returns the cached encoding under f's own name;
// a miss encodes and populates the cache, charging the entry with the
// uncompressed byte footprint it will save on future hits.
func (s *Service) encodeCached(f *waveform.Fixed) (*codec.Compressed, bool, error) {
	if s.cache == nil {
		cc, err := s.encode(f)
		return cc, false, err
	}
	k := cache.DigestWaveform(s.fingerprint, s.cfg.targetMSE, f)
	if v, ok := s.cache.Get(k); ok {
		return withName(v.(*codec.Compressed), f.Name), true, nil
	}
	cc, err := s.encode(f)
	if err != nil {
		return nil, false, err
	}
	s.cache.Add(k, cc, int64(4*f.Samples()))
	return cc, false, nil
}

// encode runs the configured codec, applying fidelity-aware tuning
// (Algorithm 1) when a target is set.
func (s *Service) encode(f *waveform.Fixed) (*codec.Compressed, error) {
	if s.cfg.targetMSE > 0 {
		fe := s.cdc.(codec.FidelityEncoder) // checked in New
		cc, _, err := fe.EncodeWithTarget(f, s.cfg.targetMSE)
		return cc, err
	}
	return s.cdc.Encode(f)
}

// withName returns cc carrying the given pulse name, so a cache or
// dedup hit is byte-identical to a fresh compile of the same content
// under a different name. The compressed payload is shared, never
// copied — Compressed values are immutable after compile.
func withName(cc *codec.Compressed, name string) *codec.Compressed {
	if cc.Name == name {
		return cc
	}
	clone := *cc
	clone.Name = name
	return &clone
}
