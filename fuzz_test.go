// Fuzz targets over the untrusted-input surfaces: image bytes from the
// wire (OpenImage/ReadImage must never panic or balloon memory on
// hostile length fields) and playback/decode of whatever parses. Seed
// corpora come from the golden wire-format images, so the fuzzers
// start from valid CPQT bytes and mutate outward.
//
// CI runs these as a short smoke (-fuzztime=10s per target); the same
// functions run as plain regression tests over the seed corpus in
// ordinary `go test` runs.
package compaqt_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"compaqt"
	"compaqt/codec"
)

// addImageSeeds feeds the golden corpus plus a few structural edge
// cases (truncations, header-only, corrupt magic) to a fuzz target.
func addImageSeeds(f *testing.F) {
	f.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "golden", "*.cpqt"))
	if err != nil {
		f.Fatal(err)
	}
	if len(paths) == 0 {
		f.Fatal("no golden images found; run `go test -run TestGolden -update .` first")
	}
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
		f.Add(raw[:len(raw)/2]) // truncated mid-entry
		f.Add(raw[:16])         // header only
	}
	f.Add([]byte{})
	f.Add([]byte("CPQT"))
	f.Add([]byte("JUNK war bytes"))
	// Hostile lengths: valid magic/version/window, then a huge entry
	// count and stream length with no data behind them.
	f.Add([]byte{'C', 'P', 'Q', 'T', 1, 0, 16, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f})
}

// FuzzOpenImage feeds arbitrary bytes to the full service-level image
// path: deserialize, aggregate stats, look up and play entries through
// the hardware-engine model. Nothing may panic; hostile inputs must
// come back as errors.
func FuzzOpenImage(f *testing.F) {
	addImageSeeds(f)
	svc, err := compaqt.New()
	if err != nil {
		f.Fatal(err)
	}
	ctx := context.Background()
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("image larger than the fuzz budget")
		}
		img, err := svc.OpenImage(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		_ = img.Stats()
		for i := range img.Entries {
			if i >= 8 {
				break
			}
			// Errors are acceptable (malformed streams, bad windows);
			// panics and runaway allocations are not.
			_, _, _ = svc.Play(ctx, img.Entries[i].Key)
		}
	})
}

// FuzzDecodeImage drives parsed-but-untrusted images through the
// software decode path (the codec Decode used for verification and
// fidelity checks) and through re-serialization: WriteTo of a parsed
// image must round-trip to the same parse.
func FuzzDecodeImage(f *testing.F) {
	addImageSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("image larger than the fuzz budget")
		}
		img, err := compaqt.ReadImage(bytes.NewReader(data))
		// The streaming reader and the in-memory byte decoder are two
		// implementations of one format: they must agree on what parses.
		imgB, errB := compaqt.DecodeImageBytes(data)
		if (err == nil) != (errB == nil) {
			t.Fatalf("decoder disagreement: ReadImage err=%v, DecodeImageBytes err=%v", err, errB)
		}
		if err != nil {
			return
		}
		wireA, errA := img.AppendTo(nil)
		wireB, errB := imgB.AppendTo(nil)
		if (errA == nil) != (errB == nil) || !bytes.Equal(wireA, wireB) {
			t.Fatal("ReadImage and DecodeImageBytes parsed different images")
		}
		if c, err := codec.New("intdct-w", codec.Params{Window: img.WindowSize}); err == nil {
			for i := range img.Entries {
				if i >= 8 {
					break
				}
				_, _ = c.Decode(img.Entries[i].Compressed) // must not panic
			}
		}
		// Re-serialization round-trip: what parsed must write back and
		// parse to the same image.
		var buf bytes.Buffer
		if _, err := img.WriteTo(&buf); err != nil {
			return // e.g. strings the writer rejects
		}
		img2, err := compaqt.ReadImage(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-serialized image does not parse: %v", err)
		}
		if len(img2.Entries) != len(img.Entries) || img2.WindowSize != img.WindowSize || img2.Machine != img.Machine {
			t.Fatalf("re-serialization changed the image shape: %d/%d entries, window %d/%d",
				len(img.Entries), len(img2.Entries), img.WindowSize, img2.WindowSize)
		}
	})
}
