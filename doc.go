// Package compaqt reproduces "COMPAQT: Compressed Waveform Memory
// Architecture for Scalable Qubit Control" (Maurya & Tannu, MICRO
// 2022, arXiv:2212.03897) as a production-quality Go library.
//
// The root package is the compile/playback front end: a Service built
// from functional options pairs a pluggable compression codec with a
// concurrent compile pipeline and the hardware decompression-engine
// model.
//
//	svc, err := compaqt.New(
//		compaqt.WithCodec("intdct-w"),
//		compaqt.WithWindow(16),
//		compaqt.WithMSETarget(5e-6),
//		compaqt.WithParallelism(runtime.NumCPU()),
//		compaqt.WithCache(4096),                // content-addressed compile cache
//		compaqt.WithStore("/var/lib/compaqt", 1<<30), // persistent image store
//	)
//	img, err := svc.Compile(ctx, qctrl.Guadalupe())
//	img, err = svc.CompileBatch(ctx, m.Name, pulses) // dedup within the batch
//	st := svc.CacheStats()                      // hits, misses, bytes saved
//	n, err := svc.CompileTo(ctx, m, file)       // serialize the image
//	img, err = svc.OpenImage(file)              // ... and load it back
//	wave, stats, err := svc.Play(ctx, "X_q3")   // hardware-model playback
//
// Pulse libraries are highly redundant — the same calibrated waveforms
// recur across circuits, shots and calibration cycles — so WithCache
// hashes each quantized pulse together with the codec's fingerprint
// (and fidelity target) into a sharded LRU; repeated content skips the
// encoders and is byte-identical to a fresh compile. CompileBatch
// additionally deduplicates inside one submission before fanning the
// unique work out to the worker pool. WithObserver installs a metrics
// hook that receives one CompileEvent per compile call — the
// integration point the HTTP serving layer (internal/server,
// cmd/compaqt-serve, with its typed client in compaqt/client) builds
// its /v1/stats endpoint on. See ARCHITECTURE.md for the layer diagram
// and data flow.
//
// WithStore extends the same content identity to disk: every compiled
// image is written through to a crash-safe content-addressed store
// (atomic temp+fsync+rename publishes, size-bounded LRU GC), and a
// Service reopened on the same directory starts warm — previously
// compiled images serve byte-identically from mmap'd files via
// Service.Store().Get with zero recompiles. The serving layer exposes
// it as GET /v1/images/{name} across restarts.
//
// The public subpackages:
//
//   - codec: the Codec interface, the process-wide registry, and the
//     five paper variants (delta, dict, dct-n, dct-w, intdct-w); new
//     backends plug in via codec.Register
//   - client: typed client for the compile server plus the HTTP API's
//     JSON wire types
//   - waveform: calibrated pulse envelopes (DRAG, GaussianSquare, ...),
//     fixed-point quantization, FDM, error metrics
//   - qctrl: the evaluated machines with seeded calibrations, the RFSoC
//     and cryo-ASIC controller models, banked waveform memory, and the
//     decompression engine
//   - circuit: OpenQASM 2.0, transpilation, routing, scheduling,
//     simulation, and the Table VI benchmarks
//   - qec: surface-code patches and syndrome-extraction workloads
//   - fidelity: randomized benchmarking and coherent-error integration
//   - experiments: one driver per table and figure of the paper
//
// The implementation lives under internal/ (wave, device, dct, csd,
// rle, compress, cache, membank, engine, hwmodel, controller, quantum,
// clifford, circuit, surface, core, experiments); the public packages
// alias those types, so values flow freely across the boundary.
//
// Run `go test -bench=. -benchmem` (or cmd/compaqt-report) to
// regenerate the paper's evaluation; see README.md for a quickstart.
package compaqt
