// Package compaqt reproduces "COMPAQT: Compressed Waveform Memory
// Architecture for Scalable Qubit Control" (Maurya & Tannu, MICRO
// 2022, arXiv:2212.03897) as a production-quality Go library.
//
// The implementation lives under internal/:
//
//   - core: the public facade — compiler, memory-image format, playback
//   - wave, device: waveform shapes and calibrated machine models
//   - dct, csd, rle, compress: the compression stack
//   - membank, engine, hwmodel, controller: the microarchitecture and
//     its resource/timing/power models
//   - quantum, clifford, circuit, surface: the fidelity-evaluation
//     substrate (state vectors, RB, benchmark circuits, QEC patches)
//   - experiments: one driver per table and figure of the paper
//
// Run `go test -bench=. -benchmem` (or cmd/compaqt-report) to
// regenerate the paper's evaluation; see DESIGN.md for the experiment
// index and EXPERIMENTS.md for paper-vs-measured results.
package compaqt
