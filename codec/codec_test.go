package codec_test

import (
	"strings"
	"sync"
	"testing"

	"compaqt/codec"
	"compaqt/qctrl"
	"compaqt/waveform"
)

// calibrated returns a realistic calibrated pulse: a Guadalupe DRAG
// pi-pulse, the workload every codec is evaluated on in the paper.
func calibrated(t testing.TB) *waveform.Fixed {
	t.Helper()
	return qctrl.Guadalupe().XPulse(3).Waveform.Quantize()
}

// budgets holds the per-codec round-trip MSE budget (unit-amplitude
// terms) and minimum compression ratio at default parameters. Delta is
// lossless but barely compresses sign-changing channels; dict can even
// expand a DRAG pulse (the paper's point about the baselines, Fig. 7a);
// the DCT family operates in the 1e-7..5e-6 MSE band (Fig. 7c).
var budgets = map[string]struct {
	mse      float64
	minRatio float64
}{
	"delta": {1e-12, 1.0},
	// delta-wrapped is registered by ExampleRegister; it delegates to
	// delta, so it inherits delta's budget if the example has already
	// run when this test iterates the registry.
	"delta-wrapped": {1e-12, 1.0},
	"dict":          {5e-2, 0.5},
	"dct-n":         {1e-4, 2.0},
	"dct-w":         {5e-5, 2.0},
	"intdct-w":      {5e-5, 2.0},
}

func TestRegisteredCodecsRoundTrip(t *testing.T) {
	f := calibrated(t)
	for _, name := range codec.Names() {
		t.Run(name, func(t *testing.T) {
			if strings.HasPrefix(name, "test-") {
				// Registry-plumbing stand-ins from other tests (e.g.
				// TestRegistry's test-null) are not real codecs; they
				// appear on repeated runs of the shared process-wide
				// registry (-count=2).
				t.Skip("test-registered stand-in codec")
			}
			budget, ok := budgets[name]
			if !ok {
				t.Fatalf("no fidelity budget declared for registered codec %q", name)
			}
			c, err := codec.New(name, codec.Params{})
			if err != nil {
				t.Fatal(err)
			}
			if c.Name() != name {
				t.Errorf("Name() = %q, want %q", c.Name(), name)
			}
			enc, err := c.Encode(f)
			if err != nil {
				t.Fatal(err)
			}
			if r := c.Ratio(enc); r < budget.minRatio {
				t.Errorf("ratio %.3f below expected floor %.2f", r, budget.minRatio)
			}
			dec, err := c.Decode(enc)
			if err != nil {
				t.Fatal(err)
			}
			if dec.Samples() != f.Samples() {
				t.Fatalf("decoded %d samples, want %d", dec.Samples(), f.Samples())
			}
			if mse := waveform.MSEFixed(f, dec); mse > budget.mse {
				t.Errorf("round-trip MSE %g exceeds budget %g", mse, budget.mse)
			}
		})
	}
}

func TestFidelityEncoderMeetsTarget(t *testing.T) {
	f := calibrated(t)
	const target = 1e-6
	for _, name := range []string{"intdct-w", "dct-w"} {
		c, err := codec.New(name, codec.Params{Window: 16})
		if err != nil {
			t.Fatal(err)
		}
		fe, ok := c.(codec.FidelityEncoder)
		if !ok {
			t.Fatalf("%s does not implement FidelityEncoder", name)
		}
		enc, mse, err := fe.EncodeWithTarget(f, target)
		if err != nil {
			t.Fatal(err)
		}
		if mse > target {
			t.Errorf("%s: achieved MSE %g exceeds target %g", name, mse, target)
		}
		dec, err := c.Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		if got := waveform.MSEFixed(f, dec); got > target {
			t.Errorf("%s: verified MSE %g exceeds target %g", name, got, target)
		}
	}
}

func TestBaselinesAreNotFidelityEncoders(t *testing.T) {
	for _, name := range []string{"delta", "dict"} {
		c, err := codec.New(name, codec.Params{})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := c.(codec.FidelityEncoder); ok {
			t.Errorf("%s has fixed lossiness and must not claim FidelityEncoder", name)
		}
	}
}

func TestParamValidation(t *testing.T) {
	cases := []struct {
		name    string
		codec   string
		p       codec.Params
		wantErr string
	}{
		{"bad window", "intdct-w", codec.Params{Window: 7}, "invalid window"},
		{"window on delta", "delta", codec.Params{Window: 16}, "not windowed"},
		{"negative threshold", "intdct-w", codec.Params{Threshold: -0.1}, "threshold"},
		{"threshold too big", "dct-w", codec.Params{Threshold: 1.5}, "threshold"},
		{"ok default", "intdct-w", codec.Params{}, ""},
		{"ok window 8", "dct-w", codec.Params{Window: 8}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := codec.New(tc.codec, tc.p)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestRegistry(t *testing.T) {
	if _, err := codec.Get("no-such-codec"); err == nil {
		t.Error("Get of unknown codec should fail")
	}
	// Lookup is case-insensitive.
	if _, err := codec.Get("IntDCT-W"); err != nil {
		t.Errorf("case-insensitive lookup failed: %v", err)
	}
	// All five paper variants are reachable.
	for _, name := range []string{"delta", "dict", "dct-n", "dct-w", "intdct-w"} {
		if _, err := codec.Get(name); err != nil {
			t.Errorf("variant %s not registered: %v", name, err)
		}
	}
	// Third-party backends plug in through Register. The registry is
	// process-wide and Register panics on duplicates, so guard the
	// registration for repeated runs (-count=2).
	registerNullOnce.Do(func() {
		codec.Register("test-null", func(p codec.Params) (codec.Codec, error) {
			return nullCodec{}, nil
		})
	})
	c, err := codec.New("test-null", codec.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "null" {
		t.Errorf("custom codec Name() = %q", c.Name())
	}
	// Duplicate registration panics.
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register should panic")
		}
	}()
	codec.Register("test-null", func(p codec.Params) (codec.Codec, error) {
		return nullCodec{}, nil
	})
}

// registerNullOnce keeps TestRegistry idempotent across -count runs.
var registerNullOnce sync.Once

// nullCodec is a registry-plumbing stand-in.
type nullCodec struct{}

func (nullCodec) Name() string { return "null" }
func (nullCodec) Encode(f *waveform.Fixed) (*codec.Compressed, error) {
	return &codec.Compressed{Name: f.Name, SampleRate: f.SampleRate, Samples: f.Samples()}, nil
}
func (nullCodec) Decode(c *codec.Compressed) (*waveform.Fixed, error) {
	return &waveform.Fixed{Name: c.Name, SampleRate: c.SampleRate}, nil
}
func (nullCodec) Ratio(c *codec.Compressed) float64 { return 1 }
