// Package codec defines COMPAQT's pluggable compression interface and
// the process-wide codec registry.
//
// A Codec turns a quantized waveform into the compressed word-stream
// representation the waveform memory stores (and the hardware engine
// decompresses), and back. The five variants the paper evaluates —
// delta, dict, dct-n, dct-w and intdct-w — are registered at init time;
// new backends (sharded, dictionary-learned, multi-resolution, ...)
// plug in through Register without touching the core packages.
package codec

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"compaqt/internal/compress"
	"compaqt/waveform"
)

// Compressed is a waveform after compile-time compression: the word
// stream stored in waveform memory plus its layout metadata.
type Compressed = compress.Compressed

// Layout selects how compressed windows are accounted in memory.
type Layout = compress.Layout

const (
	// LayoutUniform gives every window the waveform's worst-case width —
	// deterministic bandwidth on banked FPGA memory (the RFSoC point).
	LayoutUniform = compress.LayoutUniform
	// LayoutPacked stores windows at natural width (the ASIC point).
	LayoutPacked = compress.LayoutPacked
)

// Params configures a codec instance built from a registered factory.
// The zero value is usable: windowed codecs default to Window 16, and
// Ratio uses uniform banked-memory accounting (LayoutUniform, the
// RFSoC design point); pass LayoutPacked for ASIC-style accounting.
type Params struct {
	// Window is the transform window size for windowed codecs
	// (4, 8, 16 or 32); 0 means 16. Ignored by delta/dict/dct-n.
	Window int
	// Threshold is the relative coefficient threshold (fraction of full
	// scale); 0 means the variant's default. Ignored by delta/dict.
	Threshold float64
	// Adaptive enables the flat-top repeat path (Section V-D).
	Adaptive bool
	// Layout selects the word-count accounting Ratio reports.
	Layout Layout
}

// WindowOrDefault resolves the zero-value window default.
func (p Params) WindowOrDefault() int {
	if p.Window == 0 {
		return 16
	}
	return p.Window
}

// Codec is one compression backend. Implementations must be safe for
// concurrent use: the Service fans compilation out across goroutines
// sharing one Codec value.
type Codec interface {
	// Name is the registry name of the backend.
	Name() string
	// Encode compresses a quantized waveform.
	Encode(f *waveform.Fixed) (*Compressed, error)
	// Decode reconstructs the (lossy) waveform from its compressed form.
	Decode(c *Compressed) (*waveform.Fixed, error)
	// Ratio reports the compression ratio R = old size / new size of an
	// encoded waveform under the codec's configured layout.
	Ratio(c *Compressed) float64
}

// Fingerprinter is implemented by codecs whose identity and parameters
// reduce to a stable fingerprint. The compaqt Service keys its
// content-addressed compile cache by CacheKey plus pulse content, so
// two codec instances with equal CacheKey must produce byte-identical
// encodings for the same input. Codecs that do not implement it are
// fingerprinted by Name alone — safe within one Service (which holds a
// single codec configuration) but not across differently-parameterized
// instances sharing a cache.
type Fingerprinter interface {
	// CacheKey returns a stable fingerprint of the codec's identity and
	// of every parameter that affects its encoded output.
	CacheKey() string
}

// FidelityEncoder is implemented by codecs that can tune themselves to
// a per-pulse round-trip MSE target (Algorithm 1 of the paper).
type FidelityEncoder interface {
	Codec
	// EncodeWithTarget compresses f, tightening the codec's lossiness
	// until the round-trip MSE is at or below targetMSE. It returns the
	// achieved MSE alongside the compressed waveform.
	EncodeWithTarget(f *waveform.Fixed, targetMSE float64) (*Compressed, float64, error)
}

// Factory builds a codec instance from parameters. Factories validate
// their parameters and return an error for unsupported combinations.
type Factory func(p Params) (Codec, error)

var registry = struct {
	sync.RWMutex
	factories map[string]Factory
}{factories: map[string]Factory{}}

// canonical normalizes registry names: lookup is case-insensitive.
func canonical(name string) string { return strings.ToLower(strings.TrimSpace(name)) }

// Register makes a codec factory available under the given name. It
// panics if the name is empty, already taken, or the factory is nil —
// registration happens at init time, where a panic is a programming
// error surfaced immediately (the database/sql convention).
func Register(name string, f Factory) {
	key := canonical(name)
	if key == "" {
		panic("codec: Register with empty name")
	}
	if f == nil {
		panic("codec: Register with nil factory for " + name)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.factories[key]; dup {
		panic("codec: Register called twice for " + key)
	}
	registry.factories[key] = f
}

// Get returns the factory registered under name (case-insensitive).
func Get(name string) (Factory, error) {
	registry.RLock()
	f, ok := registry.factories[canonical(name)]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("codec: unknown codec %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return f, nil
}

// New builds a codec instance by registry name.
func New(name string, p Params) (Codec, error) {
	f, err := Get(name)
	if err != nil {
		return nil, err
	}
	return f(p)
}

// Names lists the registered codec names in sorted order.
func Names() []string {
	registry.RLock()
	names := make([]string, 0, len(registry.factories))
	for n := range registry.factories {
		names = append(names, n)
	}
	registry.RUnlock()
	sort.Strings(names)
	return names
}
