package codec

import (
	"fmt"

	"compaqt/internal/compress"
	"compaqt/internal/dct"
	"compaqt/waveform"
)

// Built-in codecs: the five compression variants the paper evaluates
// (Table II plus the Delta and Dict baselines of Section IV-B), exposed
// through the registry under their lowercase paper names.
//
//	delta     sign-magnitude delta encoding
//	dict      block-dictionary baseline
//	dct-n     whole-waveform floating-point DCT
//	dct-w     windowed floating-point DCT
//	intdct-w  windowed HEVC-style integer DCT (the hardware variant)
func init() {
	for _, v := range []struct {
		name    string
		variant compress.Variant
	}{
		{"delta", compress.Delta},
		{"dict", compress.Dict},
		{"dct-n", compress.DCTN},
		{"dct-w", compress.DCTW},
		{"intdct-w", compress.IntDCTW},
	} {
		variant := v.variant
		name := v.name
		Register(name, func(p Params) (Codec, error) {
			vc, err := newVariantCodec(name, variant, p)
			if err != nil {
				return nil, err
			}
			// Only the thresholded transforms can honor a fidelity
			// target (Algorithm 1 tunes a threshold delta/dict lack).
			switch variant {
			case compress.DCTN, compress.DCTW, compress.IntDCTW:
				return &thresholdedCodec{*vc}, nil
			}
			return vc, nil
		})
	}
}

// variantCodec adapts one compress.Variant to the Codec interface. It
// is stateless after construction and safe for concurrent use.
type variantCodec struct {
	name   string
	opts   compress.Options
	layout compress.Layout
}

func newVariantCodec(name string, v compress.Variant, p Params) (*variantCodec, error) {
	opts := compress.Options{
		Variant:   v,
		Threshold: p.Threshold,
		Adaptive:  p.Adaptive,
	}
	switch v {
	case compress.DCTW, compress.IntDCTW:
		opts.WindowSize = p.WindowOrDefault()
		if !dct.ValidWindow(opts.WindowSize) {
			return nil, fmt.Errorf("codec: %s: invalid window size %d (want 4, 8, 16 or 32)", name, opts.WindowSize)
		}
	default:
		if p.Window != 0 {
			return nil, fmt.Errorf("codec: %s is not windowed; leave Window unset", name)
		}
	}
	if p.Threshold < 0 || p.Threshold >= 1 {
		return nil, fmt.Errorf("codec: %s: threshold %g outside [0, 1)", name, p.Threshold)
	}
	return &variantCodec{name: name, opts: opts, layout: p.Layout}, nil
}

func (vc *variantCodec) Name() string { return vc.name }

// CacheKey implements Fingerprinter: the registry name plus every
// option that shapes the encoded stream (window, effective threshold,
// adaptive path). Layout is excluded — it only affects Ratio
// accounting, not the encoding.
func (vc *variantCodec) CacheKey() string {
	return vc.name + "/" + vc.opts.Fingerprint()
}

func (vc *variantCodec) Encode(f *waveform.Fixed) (*Compressed, error) {
	return compress.Compress(f, vc.opts)
}

func (vc *variantCodec) Decode(c *Compressed) (*waveform.Fixed, error) {
	return c.Decompress()
}

func (vc *variantCodec) Ratio(c *Compressed) float64 {
	return c.Ratio(vc.layout)
}

// thresholdedCodec wraps the variants whose lossiness is driven by a
// coefficient threshold, adding fidelity targeting. The baselines
// (delta, dict) have fixed lossiness and deliberately do not implement
// FidelityEncoder.
type thresholdedCodec struct {
	variantCodec
}

// EncodeWithTarget implements FidelityEncoder via Algorithm 1: the
// threshold is halved from its aggressive start until the round-trip
// MSE meets the target.
func (tc *thresholdedCodec) EncodeWithTarget(f *waveform.Fixed, targetMSE float64) (*Compressed, float64, error) {
	res, err := compress.FidelityAware(f, tc.opts, targetMSE)
	if err != nil {
		return nil, 0, err
	}
	return res.Compressed, res.MSE, nil
}
