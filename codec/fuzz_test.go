// Round-trip fuzzing over the codec registry: every paper variant must
// encode arbitrary sample vectors without panicking, decode back to
// the declared sample count, and — for the lossless delta baseline —
// reproduce the input exactly.
package codec_test

import (
	"encoding/binary"
	"testing"

	"compaqt/codec"
	"compaqt/waveform"
)

// fuzzVariants are the five built-in paper codecs. The list is fixed
// (not codec.Names()) so registry pollution from other tests cannot
// change what the fuzzer covers.
var fuzzVariants = []string{"delta", "dict", "dct-n", "dct-w", "intdct-w"}

// clampQ15 maps fuzz bytes into the quantizer's sample domain:
// wave.QuantizeSample clamps symmetrically to [-32767, 32767] and
// reserves -32768 (its sign-magnitude code would collide with zero),
// so a Fixed never carries it and neither may the fuzzer.
func clampQ15(u uint16) int16 {
	s := int16(u)
	if s == -32768 {
		return -32767
	}
	return s
}

// FuzzCodecRoundTrip interprets the fuzz payload as little-endian
// int16 I/Q sample pairs and round-trips them through every variant.
func FuzzCodecRoundTrip(f *testing.F) {
	// Seeds: a flat line, a ramp, an alternating worst case, and a
	// pseudo-random burst.
	flat := make([]byte, 256)
	ramp := make([]byte, 256)
	alt := make([]byte, 256)
	lcg := make([]byte, 256)
	state := uint64(1)
	for i := 0; i+1 < len(flat); i += 2 {
		binary.LittleEndian.PutUint16(flat[i:], 0x2000)
		binary.LittleEndian.PutUint16(ramp[i:], uint16(i*64))
		binary.LittleEndian.PutUint16(alt[i:], uint16(0x7fff*((i/2)%2)))
		state = state*2862933555777941757 + 3037000493
		binary.LittleEndian.PutUint16(lcg[i:], uint16(state>>48))
	}
	f.Add(flat)
	f.Add(ramp)
	f.Add(alt)
	f.Add(lcg)
	f.Add([]byte{1, 2, 3, 4})

	codecs := make(map[string]codec.Codec, len(fuzzVariants))
	for _, name := range fuzzVariants {
		c, err := codec.New(name, codec.Params{})
		if err != nil {
			f.Fatal(err)
		}
		codecs[name] = c
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 4 // two int16 channels per sample
		if n == 0 {
			t.Skip("not enough bytes for one I/Q pair")
		}
		if n > 1<<14 {
			t.Skip("waveform larger than the fuzz budget")
		}
		fx := &waveform.Fixed{Name: "fuzz", SampleRate: 4.5e9}
		fx.I = make([]int16, n)
		fx.Q = make([]int16, n)
		for i := 0; i < n; i++ {
			fx.I[i] = clampQ15(binary.LittleEndian.Uint16(data[4*i:]))
			fx.Q[i] = clampQ15(binary.LittleEndian.Uint16(data[4*i+2:]))
		}
		for _, name := range fuzzVariants {
			c := codecs[name]
			enc, err := c.Encode(fx)
			if err != nil {
				continue // a variant may reject a shape; it must not panic
			}
			if r := c.Ratio(enc); r < 0 {
				t.Errorf("%s: negative compression ratio %g", name, r)
			}
			dec, err := c.Decode(enc)
			if err != nil {
				t.Fatalf("%s: decode of own encoding failed: %v", name, err)
			}
			if dec.Samples() != n {
				t.Fatalf("%s: decoded %d samples, want %d", name, dec.Samples(), n)
			}
			if name == "delta" {
				for i := range fx.I {
					if dec.I[i] != fx.I[i] || dec.Q[i] != fx.Q[i] {
						t.Fatalf("delta: lossless round trip broke at sample %d: (%d,%d) != (%d,%d)",
							i, dec.I[i], dec.Q[i], fx.I[i], fx.Q[i])
					}
				}
			}
		}
	})
}
