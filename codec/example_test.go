package codec_test

import (
	"fmt"
	"log"
	"sync"

	"compaqt/codec"
	"compaqt/waveform"
)

// renamedCodec shows the shape of a third-party backend: it wraps the
// built-in lossless delta codec under its own registry name. A real
// backend would implement Encode/Decode/Ratio itself.
type renamedCodec struct{ codec.Codec }

func (renamedCodec) Name() string { return "delta-wrapped" }

// ExampleRegister plugs a new compression backend into the process-wide
// registry and builds a Service-compatible codec from it, without
// touching any core package.
// registerWrappedOnce keeps the example idempotent when the test
// binary reruns it (-count=2): the registry is process-wide and
// Register panics on duplicate names.
var registerWrappedOnce sync.Once

func ExampleRegister() {
	registerWrappedOnce.Do(func() {
		codec.Register("delta-wrapped", func(p codec.Params) (codec.Codec, error) {
			inner, err := codec.New("delta", p)
			if err != nil {
				return nil, err
			}
			return renamedCodec{inner}, nil
		})
	})

	c, err := codec.New("delta-wrapped", codec.Params{})
	if err != nil {
		log.Fatal(err)
	}
	f := waveform.Gaussian("X", 4.5e9, waveform.GaussianParams{
		Amp: 0.5, Duration: 32e-9, Sigma: 8e-9,
	}).Quantize()
	enc, err := c.Encode(f)
	if err != nil {
		log.Fatal(err)
	}
	dec, err := c.Decode(enc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s round-trips %d samples losslessly: %t\n",
		c.Name(), f.Samples(), waveform.MSEFixed(f, dec) == 0)
	// Output: delta-wrapped round-trips 144 samples losslessly: true
}
