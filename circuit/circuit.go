// Package circuit is the public surface of COMPAQT's circuit layer:
// OpenQASM 2.0 parsing and emission, basis decomposition, routing onto
// a machine's coupling map, ASAP scheduling, noisy simulation, and the
// Table VI benchmark circuits.
//
// The flow mirrors a control-stack compiler: ParseQASM (or a builtin
// from Benchmarks) yields a Circuit; Transpile decomposes it into the
// native basis (rz/sx/x/cx) and routes it onto a qctrl.Machine's
// coupling map, inserting swaps; ScheduleASAP assigns start times
// against the machine's gate latencies. A Schedule's Bandwidth profile
// is the paper's Fig. 5 argument in miniature: every scheduled gate
// streams its calibrated waveform from memory, and the peak
// words-per-second demand is what the (delta / dict / DCT-N / DCT-W /
// int-DCT-W) compression variants divide down — the makespan itself is
// what qctrl.Sequencer plays through the decompression engine.
//
// Simulate executes a routed circuit under a NoiseModel;
// CompressionNoise layers the coherent error a lossy codec's envelope
// distortion induces (via compaqt/fidelity) on top of device noise,
// which is how the paper's end-to-end fidelity figures (Fig. 15) are
// produced.
//
// The types are aliases of internal/circuit, so values interoperate
// with the controller sequencer and the experiment drivers.
package circuit

import "compaqt/internal/circuit"

// Gate is one circuit operation in the native basis.
type Gate = circuit.Gate

// Circuit is an ordered gate list on N logical qubits.
type Circuit = circuit.Circuit

// Routed is a circuit after decomposition and routing: physical-qubit
// gates legal on the target coupling map.
type Routed = circuit.Routed

// Schedule is an ASAP-scheduled circuit with per-op start times and
// the derived memory-bandwidth profile.
type Schedule = circuit.Schedule

// ScheduledOp is one scheduled gate instance.
type ScheduledOp = circuit.ScheduledOp

// Bandwidth summarizes a schedule's waveform-memory traffic.
type Bandwidth = circuit.Bandwidth

// NoiseModel carries per-gate error channels for simulation.
type NoiseModel = circuit.NoiseModel

// RunResult is a simulated execution's outcome distribution.
type RunResult = circuit.RunResult

var (
	// New builds an empty circuit on n logical qubits.
	New = circuit.New
	// ParseQASM parses an OpenQASM 2.0 source.
	ParseQASM = circuit.ParseQASM
	// WriteQASM renders a circuit back to OpenQASM 2.0.
	WriteQASM = circuit.WriteQASM
	// Decompose rewrites a circuit into the native basis.
	Decompose = circuit.Decompose
	// Route maps logical qubits onto a coupling map, inserting swaps.
	Route = circuit.Route
	// Transpile decomposes and routes in one pass.
	Transpile = circuit.Transpile
	// ScheduleASAP schedules a circuit against gate latencies.
	ScheduleASAP = circuit.ScheduleASAP
	// Simulate runs a routed circuit under a noise model.
	Simulate = circuit.Simulate
	// IdentityNoise is device noise only.
	IdentityNoise = circuit.IdentityNoise
	// CompressionNoise adds compression-induced coherent errors.
	CompressionNoise = circuit.CompressionNoise
)

// The Table VI benchmark circuits. The parametrized families (QFT,
// BV, GHZ, QAOA) validate their arguments and return an error for
// impossible instances; Must unwraps known-good calls. For an
// open-ended catalog of scalable families beyond Table VI, see the
// compaqt/bench package.
var (
	Benchmarks = circuit.Benchmarks
	Swap       = circuit.Swap
	Toffoli    = circuit.Toffoli
	QFT        = circuit.QFT
	Adder4     = circuit.Adder4
	BV         = circuit.BV
	QAOA       = circuit.QAOA
	GHZ        = circuit.GHZ
	// Must unwraps a builder result, panicking on error — for call
	// sites with compile-time-constant arguments.
	Must = circuit.Must
)
