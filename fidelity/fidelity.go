// Package fidelity is the public surface of COMPAQT's gate-quality
// evaluation: randomized benchmarking (Fig. 9 / Table III) and the
// unitary integration that turns a compressed pulse's envelope
// distortion into a coherent error channel.
//
// The question the paper must answer is whether lossy compression —
// the thresholded DCT-N/DCT-W/int-DCT-W variants (delta and dict are
// the lossless/fixed baselines) — degrades gates. CoherentError1Q and
// CoherentErrorCR integrate an original-vs-distorted envelope pair
// into the residual unitary the distortion applies (Section IV-C);
// AvgGateFidelity2/AvgGateFidelity4 score that unitary against the
// identity. RunRB then closes the loop experimentally: DefaultRB
// builds the paper's two-qubit randomized-benchmarking configuration,
// and the fitted RBResult decay (per-sequence-length survivals,
// fidelity, error-per-Clifford) shows compressed and uncompressed
// libraries are statistically indistinguishable at the paper's
// operating thresholds. compaqt.WithFidelityTarget / WithMSETarget
// (Algorithm 1) is the knob that keeps each pulse inside the MSE
// budget these metrics validate.
package fidelity

import (
	"compaqt/internal/clifford"
	"compaqt/internal/quantum"
)

// RBConfig parameterizes a two-qubit randomized-benchmarking run.
type RBConfig = clifford.RBConfig

// RBPoint is one sequence-length survival measurement.
type RBPoint = clifford.RBPoint

// RBResult is a fitted RB decay: per-length survivals, fidelity, EPC.
type RBResult = clifford.RBResult

var (
	// DefaultRB builds the paper's RB configuration for a two-qubit
	// error rate and RNG seed.
	DefaultRB = clifford.DefaultRB
	// RunRB executes the RB experiment and fits the decay.
	RunRB = clifford.RunRB
)

// CoherentError1Q integrates an original vs distorted 1Q envelope pair
// into the residual unitary the distortion applies (Section IV-C).
var CoherentError1Q = quantum.CoherentError1Q

// CoherentErrorCR does the same for a cross-resonance (ZX) tone.
var CoherentErrorCR = quantum.CoherentErrorCR

// AvgGateFidelity2 and AvgGateFidelity4 score a residual unitary
// against a target (identity for pure compression error).
var (
	AvgGateFidelity2 = quantum.AvgGateFidelity2
	AvgGateFidelity4 = quantum.AvgGateFidelity4
	I2               = quantum.I2
	I4               = quantum.I4
)
