// compaqt-sim streams one compressed waveform through the hardware
// decompression pipeline model (Fig. 10): RLE decode, shift-add IDCT,
// DAC buffer. It verifies bit-exactness against the software reference
// and reports the bandwidth expansion, cycle counts, and reconstruction
// error that the paper's microarchitecture claims rest on.
//
// Usage:
//
//	compaqt-sim -machine ibmq_guadalupe -gate CX -qubit 0 -target 1 -ws 16
package main

import (
	"flag"
	"fmt"
	"os"

	"compaqt/codec"
	"compaqt/qctrl"
	"compaqt/waveform"
)

func main() {
	machine := flag.String("machine", "ibmq_guadalupe", "catalog machine name")
	gate := flag.String("gate", "X", "gate pulse to play: X, SX, CX, Meas")
	qubit := flag.Int("qubit", 0, "driven qubit")
	target := flag.Int("target", -1, "CX target qubit")
	ws := flag.Int("ws", 16, "window size")
	adaptive := flag.Bool("adaptive", false, "adaptive flat-top decompression")
	flag.Parse()

	m, err := qctrl.ByName(*machine)
	if err != nil {
		fatal(err)
	}
	p, err := m.GatePulse(*gate, *qubit, *target)
	if err != nil {
		fatal(err)
	}
	f := p.Waveform.Quantize()
	cdc, err := codec.New("intdct-w", codec.Params{Window: *ws, Adaptive: *adaptive})
	if err != nil {
		fatal(err)
	}
	c, err := cdc.Encode(f)
	if err != nil {
		fatal(err)
	}
	eng, err := qctrl.NewEngine(*ws)
	if err != nil {
		fatal(err)
	}
	got, st, err := eng.Run(c)
	if err != nil {
		fatal(err)
	}
	ref, err := cdc.Decode(c)
	if err != nil {
		fatal(err)
	}
	exact := true
	for i := range ref.I {
		if got.I[i] != ref.I[i] || got.Q[i] != ref.Q[i] {
			exact = false
			break
		}
	}

	fmt.Printf("pulse:            %s (%d samples @ %.2f GS/s)\n", p.Key(), f.Samples(), m.SampleRate/1e9)
	fmt.Printf("compressed:       %d -> %d words  R(packed) = %.2f, R(uniform) = %.2f\n",
		c.OriginalWords(), c.Words(codec.LayoutPacked),
		c.Ratio(codec.LayoutPacked), c.Ratio(codec.LayoutUniform))
	fmt.Printf("worst window:     %d words\n", c.MaxWindowWords())
	fmt.Printf("pipeline:         %d cycles, %d memory words, %d IDCT ops, %d bypass samples\n",
		st.Cycles, st.MemWords, st.IDCTOps, st.BypassSamples)
	fmt.Printf("bandwidth boost:  %.2fx (samples out per word fetched)\n",
		float64(st.SamplesOut)/float64(st.MemWords))
	fmt.Printf("reconstruction:   MSE %.3g, max error %.3g (amplitude units)\n",
		waveform.MSEFixed(f, got), waveform.MaxAbsError(f, got))
	if exact {
		fmt.Println("hardware model:   bit-exact with software reference")
	} else {
		fmt.Println("hardware model:   MISMATCH with software reference")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "compaqt-sim:", err)
	os.Exit(1)
}
