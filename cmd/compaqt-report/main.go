// compaqt-report regenerates the paper's evaluation: every table and
// figure of the COMPAQT MICRO 2022 paper, printed as text tables with
// the paper's reference numbers alongside.
//
// Usage:
//
//	compaqt-report                 # run everything
//	compaqt-report -list           # list experiment ids
//	compaqt-report -run fig9       # run one experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"compaqt/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	run := flag.String("run", "", "run a single experiment by id")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *run != "" {
		e, err := experiments.ByID(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := runOne(e); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	failed := 0
	for _, e := range experiments.All() {
		if err := runOne(e); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func runOne(e experiments.Experiment) error {
	start := time.Now()
	t, err := e.Run()
	if err != nil {
		return err
	}
	fmt.Println(t.Render())
	fmt.Printf("[%s in %s]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	return nil
}
