// compaqt-bench sweeps the benchmark-circuit catalog across codecs:
// for every (family, qubit count, codec, window) combination it
// generates the instance, lowers it through transpile/schedule onto
// the machine's calibrated pulse library, compiles the scheduled
// pulse stream as one deduplicated batch, and reports compression
// ratio, worst round-trip MSE and compile latency — as a text table
// and optionally a BENCH_*-compatible JSON record.
//
// Usage:
//
//	compaqt-bench -machine ibmq_guadalupe -families ghz,qft -qubits 4,8,16
//	compaqt-bench -codecs intdct-w -ws 8,16,32 -json BENCH_sweep.json
//	compaqt-bench -list          # show the catalog and exit
//
// Workload replay: -record captures a deterministic workload stream
// (one JSON object per line, fully reproducible from its headers) and
// -replay regenerates and compiles a captured file — the same bytes,
// every run, on any machine with the same calibration tables:
//
//	compaqt-bench -record trace.jsonl -n 256 -skew 0.4 -seed 17
//	compaqt-bench -replay trace.jsonl -codecs intdct-w -ws 16
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"compaqt"
	"compaqt/bench"
	"compaqt/codec"
	"compaqt/qctrl"
	"compaqt/waveform"
)

// windowed lists the codecs that accept a window-size parameter; the
// rest reject WithWindow and sweep a single unwindowed configuration.
var windowed = map[string]bool{"dct-w": true, "intdct-w": true}

type row struct {
	Family   string  `json:"family"`
	Qubits   int     `json:"qubits"`
	Codec    string  `json:"codec"`
	Window   int     `json:"window,omitempty"`
	Pulses   int     `json:"pulses"`
	Encodes  int     `json:"encodes"`
	Ratio    float64 `json:"ratio_x"`
	WorstMSE float64 `json:"worst_mse"`
	NsOp     int64   `json:"ns_op"`
}

func main() {
	machine := flag.String("machine", "ibmq_guadalupe", "catalog machine name")
	families := flag.String("families", "", "comma-separated family names (default: all registered)")
	qubits := flag.String("qubits", "4,8", "comma-separated qubit counts to sweep")
	codecs := flag.String("codecs", "", "comma-separated codec names (default: all registered)")
	windows := flag.String("ws", "16", "comma-separated window sizes for windowed codecs")
	seed := flag.Int64("seed", 1, "circuit generation seed")
	jsonOut := flag.String("json", "", "write a BENCH_*-compatible JSON record to this path")
	list := flag.Bool("list", false, "list the family catalog and exit")
	record := flag.String("record", "", "capture a workload stream to this JSONL file and exit")
	replay := flag.String("replay", "", "compile a captured workload stream from this JSONL file and exit")
	n := flag.Int("n", 128, "request count for -record")
	skew := flag.Float64("skew", 0.3, "repeat skew in [0,1) for -record")
	flag.Parse()

	if *record != "" && *replay != "" {
		fatal(fmt.Errorf("-record and -replay are mutually exclusive"))
	}
	if *record != "" {
		if err := recordWorkload(*record, *machine, splitList(*families), *n, *skew, *seed); err != nil {
			fatal(err)
		}
		return
	}
	if *replay != "" {
		if err := replayWorkload(*replay, splitList(*codecs), splitList(*windows)); err != nil {
			fatal(err)
		}
		return
	}

	if *list {
		for _, f := range bench.Catalog() {
			max := "-"
			if f.MaxQubits != 0 {
				max = strconv.Itoa(f.MaxQubits)
			}
			fmt.Printf("%-16s %2d..%-3s %-10s %s\n", f.Name, f.MinQubits, max, f.DepthClass, f.Description)
		}
		return
	}

	m, err := qctrl.ByName(*machine)
	if err != nil {
		fatal(err)
	}
	famNames := splitList(*families)
	if len(famNames) == 0 {
		famNames = bench.Names()
	}
	codecNames := splitList(*codecs)
	if len(codecNames) == 0 {
		codecNames = codec.Names()
	}
	var ns []int
	for _, s := range splitList(*qubits) {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			fatal(fmt.Errorf("bad qubit count %q", s))
		}
		if n > m.Qubits {
			fatal(fmt.Errorf("%d qubits exceeds %s's %d", n, m.Name, m.Qubits))
		}
		ns = append(ns, n)
	}
	var wss []int
	for _, s := range splitList(*windows) {
		w, err := strconv.Atoi(s)
		if err != nil || w < 1 {
			fatal(fmt.Errorf("bad window size %q", s))
		}
		wss = append(wss, w)
	}

	fams := make([]bench.Family, len(famNames))
	for i, famName := range famNames {
		f, err := bench.Get(famName)
		if err != nil {
			fatal(err)
		}
		fams[i] = f
	}

	var rows []row
	fmt.Printf("%-16s %3s  %-10s %3s  %7s %7s %8s %10s %10s\n",
		"family", "n", "codec", "ws", "pulses", "encodes", "ratio", "worst-mse", "latency")
	for _, fam := range fams {
		for _, n := range ns {
			if !fam.Supports(n) {
				continue
			}
			c, err := fam.Generate(n, *seed)
			if err != nil {
				fatal(err)
			}
			pulses, err := bench.PulsesFor(m, c)
			if err != nil {
				fatal(err)
			}
			for _, codecName := range codecNames {
				sweeps := []int{0}
				if windowed[codecName] {
					sweeps = wss
				}
				for _, ws := range sweeps {
					r, err := compileOne(m.Name, c.Name, fam.Name, n, codecName, ws, pulses)
					if err != nil {
						fatal(err)
					}
					rows = append(rows, r)
					wsCol := "-"
					if ws > 0 {
						wsCol = strconv.Itoa(ws)
					}
					fmt.Printf("%-16s %3d  %-10s %3s  %7d %7d %7.2fx %10.2e %10s\n",
						r.Family, r.Qubits, r.Codec, wsCol, r.Pulses, r.Encodes,
						r.Ratio, r.WorstMSE, time.Duration(r.NsOp).Round(time.Microsecond))
				}
			}
		}
	}
	if len(rows) == 0 {
		fatal(fmt.Errorf("sweep matched no (family, qubits) combination"))
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, m.Name, *seed, rows); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d rows to %s\n", len(rows), *jsonOut)
	}
}

// compileOne batches the instance's scheduled pulses through a fresh
// Service configured for the codec, then decodes every image entry
// against its source waveform for the worst round-trip MSE. The
// compile cache is enabled so its miss count reports how many distinct
// waveforms the batch deduplicator actually encoded.
func compileOne(machine, instance, family string, n int, codecName string, ws int, pulses []*qctrl.Pulse) (row, error) {
	opts := []compaqt.Option{compaqt.WithCodec(codecName), compaqt.WithCache(4096)}
	if ws > 0 {
		opts = append(opts, compaqt.WithWindow(ws))
	}
	svc, err := compaqt.New(opts...)
	if err != nil {
		return row{}, err
	}
	start := time.Now()
	img, err := svc.CompileBatch(context.Background(), machine+"/"+instance, pulses)
	if err != nil {
		return row{}, fmt.Errorf("%s n=%d %s ws=%d: %w", family, n, codecName, ws, err)
	}
	elapsed := time.Since(start)

	source := map[string]*waveform.Fixed{}
	for _, p := range pulses {
		if _, ok := source[p.Key()]; !ok {
			source[p.Key()] = p.Waveform.Quantize()
		}
	}
	worst := 0.0
	cdc := svc.Codec()
	for i := range img.Entries {
		e := &img.Entries[i]
		dec, err := cdc.Decode(e.Compressed)
		if err != nil {
			return row{}, fmt.Errorf("decoding %s: %w", e.Key, err)
		}
		f, ok := source[e.Key]
		if !ok {
			return row{}, fmt.Errorf("image entry %s not in the batch", e.Key)
		}
		if mse := waveform.MSEFixed(f, dec); mse > worst {
			worst = mse
		}
	}
	st := img.Stats()
	return row{
		Family:   family,
		Qubits:   n,
		Codec:    codecName,
		Window:   ws,
		Pulses:   len(pulses),
		Encodes:  int(svc.CacheStats().Misses),
		Ratio:    st.PackedRatio,
		WorstMSE: worst,
		NsOp:     elapsed.Nanoseconds(),
	}, nil
}

type benchRecord struct {
	Description string           `json:"description"`
	Environment map[string]any   `json:"environment"`
	Benchmarks  []benchmarkEntry `json:"benchmarks"`
}

type benchmarkEntry struct {
	Name  string `json:"name"`
	After row    `json:"after"`
	Note  string `json:"note,omitempty"`
}

func writeJSON(path, machine string, seed int64, rows []row) error {
	rec := benchRecord{
		Description: fmt.Sprintf(
			"compaqt-bench sweep on %s (circuit seed %d): catalog instances lowered through transpile/schedule and batch-compiled per codec; ratio is the image's packed compression ratio, worst_mse the worst per-entry round-trip MSE, ns_op the CompileBatch wall time.",
			machine, seed),
		Environment: map[string]any{
			"goos":    runtime.GOOS,
			"goarch":  runtime.GOARCH,
			"go":      runtime.Version(),
			"command": strings.Join(os.Args, " "),
		},
	}
	for _, r := range rows {
		name := fmt.Sprintf("bench/%s/n%d/%s", r.Family, r.Qubits, r.Codec)
		if r.Window > 0 {
			name += fmt.Sprintf("/w%d", r.Window)
		}
		rec.Benchmarks = append(rec.Benchmarks, benchmarkEntry{Name: name, After: r})
	}
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// recordWorkload captures a deterministic workload stream: n requests
// drawn with the given skew and seed, written as JSON lines. The file
// is a pure function of the flags — re-recording reproduces it
// byte-identically.
func recordWorkload(path, machine string, families []string, n int, skew float64, seed int64) error {
	m, err := qctrl.ByName(machine)
	if err != nil {
		return err
	}
	wl, err := bench.NewWorkload(bench.WorkloadOptions{
		Machine:    m,
		Families:   families,
		RepeatSkew: skew,
		Seed:       seed,
	})
	if err != nil {
		return err
	}
	reqs, err := wl.Requests(n)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bench.WriteRecord(f, reqs); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "recorded %d requests to %s\n", len(reqs), path)
	return nil
}

// replayWorkload regenerates a captured stream and compiles it in
// order through one Service, reporting the aggregate the run produced.
// Determinism end to end: the same file always compiles the same
// byte streams, so two replays are directly comparable.
func replayWorkload(path string, codecs, windows []string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	entries, err := bench.ReadRecord(f)
	f.Close()
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("replay file %s holds no requests", path)
	}
	reqs, err := bench.NewReplayer().MaterializeAll(entries)
	if err != nil {
		return err
	}

	codecName := "intdct-w"
	if len(codecs) > 0 {
		codecName = codecs[0]
	}
	opts := []compaqt.Option{compaqt.WithCodec(codecName), compaqt.WithCache(4096)}
	if windowed[codecName] && len(windows) > 0 {
		ws, err := strconv.Atoi(windows[0])
		if err != nil || ws < 1 {
			return fmt.Errorf("bad window size %q", windows[0])
		}
		opts = append(opts, compaqt.WithWindow(ws))
	}
	svc, err := compaqt.New(opts...)
	if err != nil {
		return err
	}

	var pulses, repeats int
	start := time.Now()
	for i, r := range reqs {
		if _, err := svc.CompileBatch(context.Background(), r.Library+"/"+r.Name(), r.Pulses); err != nil {
			return fmt.Errorf("replay request %d (%s): %w", i+1, r.Name(), err)
		}
		pulses += len(r.Pulses)
		if r.Repeat {
			repeats++
		}
	}
	elapsed := time.Since(start)
	cs := svc.CacheStats()
	fmt.Printf("replayed %d requests (%d repeats, %d pulses) from %s in %s\n",
		len(reqs), repeats, pulses, path, elapsed.Round(time.Millisecond))
	fmt.Printf("codec %s: cache hits %d, misses %d\n", codecName, cs.Hits, cs.Misses)
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "compaqt-bench:", err)
	os.Exit(1)
}
