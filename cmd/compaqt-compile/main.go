// compaqt-compile runs the COMPAQT compiler module (Fig. 6): it
// compresses a machine's calibrated pulse library with the configured
// codec and writes the waveform-memory image that would be loaded
// onto the controller after a calibration cycle.
//
// Usage:
//
//	compaqt-compile -machine ibmq_guadalupe -ws 16 -o guadalupe.cpqt
//	compaqt-compile -machine ibmq_bogota -ws 8 -adaptive -mse 5e-6
//	compaqt-compile -machine ibmq_guadalupe -batch 8 -cache 4096
//	compaqt-compile -codecs            # list registered codecs
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"compaqt"
	"compaqt/codec"
	"compaqt/qctrl"
)

func main() {
	machine := flag.String("machine", "ibmq_guadalupe", "catalog machine name (see -machines)")
	listMachines := flag.Bool("machines", false, "list machine names and exit")
	listCodecs := flag.Bool("codecs", false, "list registered codec names and exit")
	codecName := flag.String("codec", "intdct-w", "compression codec (see -codecs)")
	ws := flag.Int("ws", 16, "int-DCT window size (4, 8, 16, 32)")
	adaptive := flag.Bool("adaptive", false, "enable flat-top adaptive compression (ASIC path)")
	mse := flag.Float64("mse", 0, "fidelity-aware MSE target (0 = fixed threshold)")
	jobs := flag.Int("j", runtime.NumCPU(), "compile parallelism (goroutines)")
	batch := flag.Int("batch", 0, "submit the library as one deduplicated batch replicated N times (0 = per-pulse compile)")
	cacheSize := flag.Int("cache", 0, "content-addressed compile cache capacity in entries (0 = disabled)")
	out := flag.String("o", "", "output image path (default: none, stats only)")
	flag.Parse()

	if *listMachines {
		for _, n := range qctrl.MachineNames() {
			fmt.Println(n)
		}
		return
	}
	if *listCodecs {
		for _, n := range codec.Names() {
			fmt.Println(n)
		}
		return
	}
	m, err := qctrl.ByName(*machine)
	if err != nil {
		fatal(err)
	}
	opts := []compaqt.Option{
		compaqt.WithCodec(*codecName),
		compaqt.WithAdaptive(*adaptive),
		compaqt.WithParallelism(*jobs),
	}
	// Only forward -ws when set explicitly: non-windowed codecs (delta,
	// dict, dct-n) reject a window, and windowed ones default to 16.
	wsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "ws" {
			wsSet = true
		}
	})
	if wsSet {
		opts = append(opts, compaqt.WithWindow(*ws))
	}
	if *mse > 0 {
		opts = append(opts, compaqt.WithMSETarget(*mse))
	}
	if *cacheSize > 0 {
		opts = append(opts, compaqt.WithCache(*cacheSize))
	}
	svc, err := compaqt.New(opts...)
	if err != nil {
		fatal(err)
	}
	var img *compaqt.Image
	libLen := 0
	start := time.Now()
	if *batch > 0 {
		// A batch of N library replicas stands in for N calibration
		// cycles / shot batches whose pulse content largely repeats:
		// CompileBatch encodes each distinct waveform once.
		lib := m.Library()
		libLen = len(lib)
		pulses := make([]*qctrl.Pulse, 0, *batch*libLen)
		for i := 0; i < *batch; i++ {
			pulses = append(pulses, lib...)
		}
		img, err = svc.CompileBatch(context.Background(), m.Name, pulses)
	} else {
		img, err = svc.Compile(context.Background(), m)
	}
	elapsed := time.Since(start)
	if err != nil {
		fatal(err)
	}
	s := img.Stats()
	fmt.Printf("machine:        %s (%d qubits)\n", m.Name, m.Qubits)
	fmt.Printf("codec:          %s\n", svc.Codec().Name())
	fmt.Printf("pulses:         %d\n", s.Entries)
	if *batch > 0 {
		fmt.Printf("batch:          %d replicas of %d pulses, compiled in %v\n",
			*batch, libLen, elapsed.Round(time.Microsecond))
	} else {
		fmt.Printf("compile time:   %v\n", elapsed.Round(time.Microsecond))
	}
	if *cacheSize > 0 {
		cs := svc.CacheStats()
		fmt.Printf("cache:          %d hits, %d misses, %d evictions, %.1f KB saved (%.0f%% hit rate)\n",
			cs.Hits, cs.Misses, cs.Evictions, float64(cs.BytesSaved)/1024, 100*cs.HitRate())
	}
	fmt.Printf("original:       %d words (%.1f KB)\n", s.OriginalWords, float64(s.OriginalWords)*2/1024)
	fmt.Printf("packed:         %d words  R = %.2f\n", s.PackedWords, s.PackedRatio)
	fmt.Printf("uniform:        %d words  R = %.2f (worst window %d)\n", s.UniformWords, s.UniformRatio, s.WorstWindow)
	if s.RepeatSamples > 0 {
		fmt.Printf("repeat samples: %d (adaptive flat-top path)\n", s.RepeatSamples)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		n, err := img.WriteTo(f)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("image:          %s (%d bytes)\n", *out, n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "compaqt-compile:", err)
	os.Exit(1)
}
