// compaqt-compile runs the COMPAQT compiler module (Fig. 6): it
// compresses a machine's calibrated pulse library with the windowed
// integer DCT and writes the waveform-memory image that would be loaded
// onto the controller after a calibration cycle.
//
// Usage:
//
//	compaqt-compile -machine ibmq_guadalupe -ws 16 -o guadalupe.cpqt
//	compaqt-compile -machine ibmq_bogota -ws 8 -adaptive -mse 5e-6
package main

import (
	"flag"
	"fmt"
	"os"

	"compaqt/internal/core"
	"compaqt/internal/device"
)

func main() {
	machine := flag.String("machine", "ibmq_guadalupe", "catalog machine name (see -machines)")
	listMachines := flag.Bool("machines", false, "list machine names and exit")
	ws := flag.Int("ws", 16, "int-DCT window size (4, 8, 16, 32)")
	adaptive := flag.Bool("adaptive", false, "enable flat-top adaptive compression (ASIC path)")
	mse := flag.Float64("mse", 0, "fidelity-aware MSE target (0 = fixed threshold)")
	out := flag.String("o", "", "output image path (default: none, stats only)")
	flag.Parse()

	if *listMachines {
		for _, n := range device.Names() {
			fmt.Println(n)
		}
		return
	}
	m, err := device.ByName(*machine)
	if err != nil {
		fatal(err)
	}
	compiler := &core.Compiler{WindowSize: *ws, TargetMSE: *mse, Adaptive: *adaptive}
	img, err := compiler.Compile(m)
	if err != nil {
		fatal(err)
	}
	s := img.Stats()
	fmt.Printf("machine:        %s (%d qubits)\n", m.Name, m.Qubits)
	fmt.Printf("pulses:         %d\n", s.Entries)
	fmt.Printf("original:       %d words (%.1f KB)\n", s.OriginalWords, float64(s.OriginalWords)*2/1024)
	fmt.Printf("packed:         %d words  R = %.2f\n", s.PackedWords, s.PackedRatio)
	fmt.Printf("uniform:        %d words  R = %.2f (worst window %d)\n", s.UniformWords, s.UniformRatio, s.WorstWindow)
	if s.RepeatSamples > 0 {
		fmt.Printf("repeat samples: %d (adaptive flat-top path)\n", s.RepeatSamples)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		n, err := img.WriteTo(f)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("image:          %s (%d bytes)\n", *out, n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "compaqt-compile:", err)
	os.Exit(1)
}
