//go:build faultinject

package main

import (
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"compaqt/internal/faults"
)

// peerTransport (faultinject build) reads COMPAQT_PEER_FAULTS and, when
// set, wraps the peer transport in a seeded fault injector — the
// multi-process chaos harness's way of making real compaqt-serve
// processes mistreat each other deterministically. The schedule is a
// comma-separated key=value list:
//
//	COMPAQT_PEER_FAULTS="seed=7,reset=0.02,p503=0.02,trunc=0.01"
//
// keys: seed (uint), reset/p503/trunc (probabilities in [0,1]).
// SIGUSR1 stops injection in place (faults.RoundTripper.Stop), so the
// harness can assert the "faults cease, cluster heals fully" half of
// the invariant without restarting anything.
func peerTransport() http.RoundTripper {
	spec := os.Getenv("COMPAQT_PEER_FAULTS")
	if spec == "" {
		return nil
	}
	var cfg faults.HTTPConfig
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			log.Fatalf("compaqt-serve: bad COMPAQT_PEER_FAULTS entry %q", kv)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				log.Fatalf("compaqt-serve: bad fault seed %q: %v", v, err)
			}
			cfg.Seed = n
		case "reset", "p503", "trunc":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p < 0 || p > 1 {
				log.Fatalf("compaqt-serve: bad fault probability %s=%q", k, v)
			}
			switch k {
			case "reset":
				cfg.ResetProb = p
			case "p503":
				cfg.Prob503 = p
			case "trunc":
				cfg.TruncateProb = p
			}
		default:
			log.Fatalf("compaqt-serve: unknown COMPAQT_PEER_FAULTS key %q", k)
		}
	}
	rt := faults.NewRoundTripper(nil, cfg)
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGUSR1)
	go func() {
		<-stop
		rt.Stop()
		log.Printf("compaqt-serve: peer fault injection stopped (SIGUSR1)")
	}()
	log.Printf("compaqt-serve: peer fault injection active (%s)", spec)
	return rt
}
