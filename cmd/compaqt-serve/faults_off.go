//go:build !faultinject

package main

import "net/http"

// peerTransport returns the transport under the cluster's peer
// clients. Production builds use the default transport; the
// faultinject build (faults_on.go) substitutes a seeded lossy one when
// COMPAQT_PEER_FAULTS is set.
func peerTransport() http.RoundTripper { return nil }
