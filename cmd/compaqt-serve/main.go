// compaqt-serve runs the COMPAQT compile service over HTTP/JSON: a
// network front end to the compile pipeline (codec registry, worker
// pool, content-addressed cache) for clients that submit calibrated
// pulses and fetch compiled waveform-memory images.
//
// Usage:
//
//	compaqt-serve -addr :8371
//	compaqt-serve -codec intdct-w -ws 16 -cache 4096 -parallelism 8
//	compaqt-serve -max-inflight 16 -max-body 67108864
//	compaqt-serve -store-dir /var/lib/compaqt -store-max-bytes 1073741824
//	compaqt-serve -self http://10.0.0.1:8371 \
//	  -join http://10.0.0.2:8371 \
//	  -replication 2 -store-dir /var/lib/compaqt
//
// Endpoints: POST /v1/compile, POST /v1/compile/batch,
// GET/PUT /v1/images/{name}, GET /v1/stats (?scope=cluster),
// GET /v1/cluster, POST /v1/cluster/gossip, GET /v1/cluster/digests,
// GET /healthz. See the client package for the typed Go client.
// SIGINT/SIGTERM drain in-flight requests before exit.
//
// With -join (one or more gossip seeds) or -peers (a static member
// list, still honored) the process joins a digest-sharded cluster:
// image names hash onto a consistent-hash ring over the member URLs,
// GETs for remote shards are forwarded to their owner (and written
// through to the local store), and each compiled named image is
// published to its owner plus -replication-1 ring successors.
// Membership is gossiped, failed publishes are hinted to
// <store-dir>/HINTS and replayed when the peer heals, and a background
// anti-entropy loop (-repair-interval) streams the shard this node
// owns from current holders.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"compaqt/codec"
	"compaqt/internal/cluster"
	"compaqt/internal/server"
)

func main() {
	addr := flag.String("addr", ":8371", "listen address")
	codecName := flag.String("codec", "intdct-w", "default compression codec (see -codecs)")
	listCodecs := flag.Bool("codecs", false, "list registered codec names and exit")
	ws := flag.Int("ws", 0, "default transform window (4, 8, 16, 32; 0 = codec default)")
	adaptive := flag.Bool("adaptive", false, "enable flat-top adaptive compression by default")
	mse := flag.Float64("mse", 0, "default fidelity-aware MSE target (0 = fixed threshold)")
	cacheSize := flag.Int("cache", 0, "compile cache capacity in entries (0 = default, -1 = disabled)")
	parallelism := flag.Int("parallelism", runtime.NumCPU(), "per-compile worker-pool width")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently executing compile requests (0 = 2*NumCPU)")
	maxBody := flag.Int64("max-body", 0, "max request body bytes (0 = 64 MiB)")
	maxBatch := flag.Int("max-batch", 0, "max pulses per batch request (0 = 8192)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown drain timeout")
	admissionWait := flag.Duration("admission-wait", 0, "max queue wait for a compile slot before shedding with 429 (0 = 10s, negative = unbounded)")
	readHeaderTimeout := flag.Duration("read-header-timeout", 0, "http.Server ReadHeaderTimeout (0 = 5s, negative = disabled)")
	readTimeout := flag.Duration("read-timeout", 0, "http.Server ReadTimeout (0 = 2m, negative = disabled)")
	idleTimeout := flag.Duration("idle-timeout", 0, "http.Server IdleTimeout (0 = 2m, negative = disabled)")
	storeDir := flag.String("store-dir", "", "persistent image store directory (empty = no persistence)")
	storeMax := flag.Int64("store-max-bytes", 0, "persistent store size budget in bytes (0 = 1 GiB)")
	self := flag.String("self", "", "this node's advertised base URL in the cluster (e.g. http://10.0.0.1:8371; required with -peers or -join)")
	peers := flag.String("peers", "", "comma-separated base URLs of every cluster member, this node included (empty = standalone)")
	join := flag.String("join", "", "comma-separated gossip seed URLs: join an existing cluster and learn the rest of the table")
	replication := flag.Int("replication", 1, "cluster replication factor: ring members each image is published to")
	clusterProbe := flag.Duration("cluster-probe", 0, "peer health-probe interval (0 = 1s, negative = disabled)")
	gossipInterval := flag.Duration("gossip-interval", 0, "membership gossip push-pull interval (0 = 1s, negative = disabled)")
	suspectTimeout := flag.Duration("suspect-timeout", 0, "how long a suspect member may stay silent before it is declared dead (0 = 5s)")
	repairInterval := flag.Duration("repair-interval", 0, "anti-entropy shard-repair interval (0 = 5s, negative = disabled)")
	hintPath := flag.String("hints", "", "hinted-handoff log path (empty = <store-dir>/HINTS when clustered with a store, else memory-only)")
	clusterHedge := flag.Duration("cluster-hedge", 0, "delay before a peer image GET races a hedged second attempt (0 = 25ms, negative = disabled)")
	noPeerFill := flag.Bool("no-peer-fill", false, "serve forwarded images without write-through-filling the local store (pure proxy)")
	flag.Parse()

	if *listCodecs {
		for _, n := range codec.Names() {
			fmt.Println(n)
		}
		return
	}

	splitURLs := func(s string) []string {
		var out []string
		for _, p := range strings.Split(s, ",") {
			if p = strings.TrimSpace(p); p != "" {
				out = append(out, strings.TrimRight(p, "/"))
			}
		}
		return out
	}
	peerList := splitURLs(*peers)
	joinList := splitURLs(*join)
	if (len(peerList) > 0 || len(joinList) > 0) && *self == "" {
		log.Fatal("compaqt-serve: -peers and -join require -self (this node's advertised URL)")
	}
	hints := *hintPath
	if hints == "" && *storeDir != "" && (*self != "" || len(peerList) > 0 || len(joinList) > 0) {
		hints = filepath.Join(*storeDir, "HINTS")
	}

	srv, err := server.New(server.Config{
		Codec:          *codecName,
		Window:         *ws,
		Adaptive:       *adaptive,
		MSETarget:      *mse,
		CacheSize:      *cacheSize,
		Parallelism:    *parallelism,
		MaxInFlight:    *maxInflight,
		MaxBodyBytes:   *maxBody,
		MaxBatchPulses: *maxBatch,
		DrainTimeout:   *drain,
		AdmissionWait:  *admissionWait,
		StoreDir:       *storeDir,
		StoreMaxBytes:  *storeMax,
		Cluster: cluster.Config{
			Self:           strings.TrimRight(*self, "/"),
			Peers:          peerList,
			Join:           joinList,
			Replication:    *replication,
			ProbeInterval:  *clusterProbe,
			GossipInterval: *gossipInterval,
			SuspectTimeout: *suspectTimeout,
			HintPath:       hints,
			Hedge:          *clusterHedge,
			Transport:      peerTransport(),
		},
		ClusterNoFill:  *noPeerFill,
		RepairInterval: *repairInterval,

		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idleTimeout,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err = srv.Run(ctx, *addr, func(a net.Addr) {
		log.Printf("compaqt-serve: listening on %s (codec %s, parallelism %d)",
			a, *codecName, *parallelism)
	})
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Printf("compaqt-serve: drained, bye")
}
