// compaqt-serve runs the COMPAQT compile service over HTTP/JSON: a
// network front end to the compile pipeline (codec registry, worker
// pool, content-addressed cache) for clients that submit calibrated
// pulses and fetch compiled waveform-memory images.
//
// Usage:
//
//	compaqt-serve -addr :8371
//	compaqt-serve -codec intdct-w -ws 16 -cache 4096 -parallelism 8
//	compaqt-serve -max-inflight 16 -max-body 67108864
//	compaqt-serve -store-dir /var/lib/compaqt -store-max-bytes 1073741824
//
// Endpoints: POST /v1/compile, POST /v1/compile/batch,
// GET /v1/images/{name}, GET /v1/stats, GET /healthz. See the client
// package for the typed Go client. SIGINT/SIGTERM drain in-flight
// requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"compaqt/codec"
	"compaqt/internal/server"
)

func main() {
	addr := flag.String("addr", ":8371", "listen address")
	codecName := flag.String("codec", "intdct-w", "default compression codec (see -codecs)")
	listCodecs := flag.Bool("codecs", false, "list registered codec names and exit")
	ws := flag.Int("ws", 0, "default transform window (4, 8, 16, 32; 0 = codec default)")
	adaptive := flag.Bool("adaptive", false, "enable flat-top adaptive compression by default")
	mse := flag.Float64("mse", 0, "default fidelity-aware MSE target (0 = fixed threshold)")
	cacheSize := flag.Int("cache", 0, "compile cache capacity in entries (0 = default, -1 = disabled)")
	parallelism := flag.Int("parallelism", runtime.NumCPU(), "per-compile worker-pool width")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently executing compile requests (0 = 2*NumCPU)")
	maxBody := flag.Int64("max-body", 0, "max request body bytes (0 = 64 MiB)")
	maxBatch := flag.Int("max-batch", 0, "max pulses per batch request (0 = 8192)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown drain timeout")
	admissionWait := flag.Duration("admission-wait", 0, "max queue wait for a compile slot before shedding with 429 (0 = 10s, negative = unbounded)")
	readHeaderTimeout := flag.Duration("read-header-timeout", 0, "http.Server ReadHeaderTimeout (0 = 5s, negative = disabled)")
	readTimeout := flag.Duration("read-timeout", 0, "http.Server ReadTimeout (0 = 2m, negative = disabled)")
	idleTimeout := flag.Duration("idle-timeout", 0, "http.Server IdleTimeout (0 = 2m, negative = disabled)")
	storeDir := flag.String("store-dir", "", "persistent image store directory (empty = no persistence)")
	storeMax := flag.Int64("store-max-bytes", 0, "persistent store size budget in bytes (0 = 1 GiB)")
	flag.Parse()

	if *listCodecs {
		for _, n := range codec.Names() {
			fmt.Println(n)
		}
		return
	}

	srv, err := server.New(server.Config{
		Codec:          *codecName,
		Window:         *ws,
		Adaptive:       *adaptive,
		MSETarget:      *mse,
		CacheSize:      *cacheSize,
		Parallelism:    *parallelism,
		MaxInFlight:    *maxInflight,
		MaxBodyBytes:   *maxBody,
		MaxBatchPulses: *maxBatch,
		DrainTimeout:   *drain,
		AdmissionWait:  *admissionWait,
		StoreDir:       *storeDir,
		StoreMaxBytes:  *storeMax,

		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idleTimeout,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err = srv.Run(ctx, *addr, func(a net.Addr) {
		log.Printf("compaqt-serve: listening on %s (codec %s, parallelism %d)",
			a, *codecName, *parallelism)
	})
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Printf("compaqt-serve: drained, bye")
}
