// compaqt-qasm runs an OpenQASM 2.0 circuit through the full COMPAQT
// stack: parse, transpile to the machine's native basis, route onto
// its coupling map, schedule, and stream every gate's waveform through
// the compressed memory + decompression pipeline. It reports the
// circuit's bandwidth demand and what compression saved.
//
// Usage:
//
//	compaqt-qasm -machine ibmq_guadalupe -ws 16 circuit.qasm
//	compaqt-qasm -builtin qft-4          # run a bundled benchmark
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"compaqt"
	"compaqt/bench"
	"compaqt/circuit"
	"compaqt/qctrl"
)

func main() {
	machine := flag.String("machine", "ibmq_guadalupe", "catalog machine name")
	ws := flag.Int("ws", 16, "int-DCT window size")
	builtin := flag.String("builtin", "", "run a bundled Table VI benchmark instead of a file (e.g. qft-4, qaoa-6)")
	emit := flag.Bool("emit", false, "print the parsed circuit back as QASM and exit")
	batch := flag.Bool("batch", false, "compile only the circuit's pulses as one deduplicated batch (instead of the full library)")
	cacheSize := flag.Int("cache", 0, "content-addressed compile cache capacity in entries (0 = disabled)")
	flag.Parse()

	m, err := qctrl.ByName(*machine)
	if err != nil {
		fatal(err)
	}
	var c *circuit.Circuit
	switch {
	case *builtin != "":
		for _, b := range circuit.Benchmarks() {
			if b.Name == *builtin {
				c = b
			}
		}
		if c == nil {
			fatal(fmt.Errorf("unknown builtin %q (try one of the Table VI names)", *builtin))
		}
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		c, err = circuit.ParseQASM(string(src))
		if err != nil {
			fatal(err)
		}
		c.Name = flag.Arg(0)
	default:
		fatal(fmt.Errorf("need a .qasm file or -builtin name"))
	}

	if *emit {
		src, err := circuit.WriteQASM(c)
		if err != nil {
			fatal(err)
		}
		fmt.Print(src)
		return
	}

	r, err := circuit.Transpile(c, m.Qubits, m.Coupling)
	if err != nil {
		fatal(err)
	}
	sched, err := circuit.ScheduleASAP(r.Circuit, m.Latency)
	if err != nil {
		fatal(err)
	}
	opts := []compaqt.Option{compaqt.WithWindow(*ws)}
	if *cacheSize > 0 {
		opts = append(opts, compaqt.WithCache(*cacheSize))
	}
	svc, err := compaqt.New(opts...)
	if err != nil {
		fatal(err)
	}
	var img *compaqt.Image
	if *batch {
		// Compile only what the schedule plays: one pulse reference per
		// scheduled op, deduplicated by content inside CompileBatch.
		pulses, err := bench.SchedulePulses(m, sched)
		if err != nil {
			fatal(err)
		}
		img, err = svc.CompileBatch(context.Background(), m.Name, pulses)
		if err != nil {
			fatal(err)
		}
		uniq := map[string]bool{}
		for _, p := range pulses {
			uniq[p.Key()] = true
		}
		// CompileBatch dedups by content, not key; with the cache on,
		// its miss count is the number of waveforms actually encoded.
		if *cacheSize > 0 {
			fmt.Printf("batch compile:    %d pulse refs, %d distinct gates, %d waveforms encoded\n",
				len(pulses), len(uniq), svc.CacheStats().Misses)
		} else {
			fmt.Printf("batch compile:    %d pulse refs, %d distinct gates\n", len(pulses), len(uniq))
		}
	} else {
		img, err = svc.Compile(context.Background(), m)
		if err != nil {
			fatal(err)
		}
	}
	seq, err := qctrl.NewSequencer(m, img)
	if err != nil {
		fatal(err)
	}
	st, err := seq.Play(r, sched)
	if err != nil {
		fatal(err)
	}

	bw := sched.MemoryBandwidth(m)
	fmt.Printf("circuit:          %s (%d logical qubits)\n", c.Name, c.N)
	fmt.Printf("transpiled:       %d CX, %d SX, %d X on %s (%d routing swaps)\n",
		r.CountGate("cx"), r.CountGate("sx"), r.CountGate("x"), m.Name, r.SwapsInserted)
	fmt.Printf("schedule:         %.1f us makespan, peak %.1f / avg %.1f GB/s memory bandwidth\n",
		sched.Makespan*1e6, bw.PeakBps/1e9, bw.AvgBps/1e9)
	fmt.Printf("streaming:        %d ops, %d samples to DACs\n", st.Ops, st.Engine.SamplesOut)
	fmt.Printf("memory traffic:   %d words compressed vs %d uncompressed (%.2fx reduction)\n",
		st.Engine.MemWords, st.UncompressedWords, st.BandwidthReduction())
	fmt.Printf("engines at peak:  %d concurrent decompression pipelines\n", st.PeakConcurrentEngines)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "compaqt-qasm:", err)
	os.Exit(1)
}
