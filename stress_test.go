// Concurrency stress for the Service front end: sustained mixed
// Compile / CompileBatch / CacheStats / Play traffic from many
// goroutines against one Service with a deliberately tiny cache, so
// eviction churn races against hits, dedup and playback. Run with
// -race; every assertion is an invariant (byte identity against a
// precomputed reference, monotonic counters), never a timing.
package compaqt_test

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"compaqt"
	"compaqt/qctrl"
	"compaqt/waveform"
)

// stressPulse builds a deterministic pulse from an LCG seed (exact
// binary fractions, so compiles are byte-stable).
func stressPulse(qubit, seed int) *qctrl.Pulse {
	const samples = 64
	iCh := make([]float64, samples)
	qCh := make([]float64, samples)
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	for i := range iCh {
		state = state*6364136223846793005 + 1442695040888963407
		iCh[i] = float64(int64(state>>40)%1024) / 1024
		state = state*6364136223846793005 + 1442695040888963407
		qCh[i] = float64(int64(state>>40)%1024) / 1024
	}
	p := &qctrl.Pulse{Gate: "X", Qubit: qubit, Target: -1, Waveform: &waveform.Waveform{
		SampleRate: 4.5e9, I: iCh, Q: qCh,
	}}
	p.Waveform.Name = p.Key()
	return p
}

func TestServiceConcurrencyStress(t *testing.T) {
	ctx := context.Background()

	// 24 distinct pulses against a 8-entry cache: every round of
	// compiles forces evictions while other goroutines are mid-lookup.
	const distinct = 24
	pulses := make([]*qctrl.Pulse, distinct)
	for i := range pulses {
		pulses[i] = stressPulse(i, i+1)
	}

	svc, err := compaqt.New(
		compaqt.WithCache(8),
		compaqt.WithParallelism(4),
	)
	if err != nil {
		t.Fatal(err)
	}

	// Reference bytes compiled by an identically-configured service:
	// everything the stress goroutines produce must match these.
	ref, err := compaqt.New(compaqt.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	refImg, err := ref.CompilePulses(ctx, "stress", pulses)
	if err != nil {
		t.Fatal(err)
	}
	var refBytes bytes.Buffer
	if _, err := refImg.WriteTo(&refBytes); err != nil {
		t.Fatal(err)
	}
	refPlay := make(map[string]*waveform.Fixed, distinct)
	for _, e := range refImg.Entries {
		out, _, err := ref.Play(ctx, e.Key)
		if err != nil {
			t.Fatal(err)
		}
		refPlay[e.Key] = out
	}

	goroutines := 16
	iters := 30
	if testing.Short() {
		goroutines, iters = 8, 10
	}

	var wg sync.WaitGroup
	errc := make(chan error, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch g % 4 {
				case 0: // full-library per-pulse compile, byte identity
					img, err := svc.CompilePulses(ctx, "stress", pulses)
					if err != nil {
						errc <- err
						continue
					}
					var buf bytes.Buffer
					if _, err := img.WriteTo(&buf); err != nil {
						errc <- err
						continue
					}
					if !bytes.Equal(buf.Bytes(), refBytes.Bytes()) {
						errc <- fmt.Errorf("goroutine %d iter %d: compile bytes drifted under churn", g, i)
					}
				case 1: // batch with duplicates, order stability + equality
					batch := append(append([]*qctrl.Pulse{}, pulses...), pulses[i%distinct], pulses[(i+7)%distinct])
					img, err := svc.CompileBatch(ctx, "stress", batch)
					if err != nil {
						errc <- err
						continue
					}
					if len(img.Entries) != len(batch) {
						errc <- fmt.Errorf("goroutine %d: batch produced %d entries, want %d", g, len(img.Entries), len(batch))
						continue
					}
					for j, e := range img.Entries {
						if e.Key != batch[j].Key() {
							errc <- fmt.Errorf("goroutine %d: batch entry %d is %q, want %q", g, j, e.Key, batch[j].Key())
							break
						}
					}
					if !reflect.DeepEqual(img.Entries[:distinct], refImg.Entries) {
						errc <- fmt.Errorf("goroutine %d iter %d: batch entries differ from reference", g, i)
					}
				case 2: // cache stats reads race the compiles
					st := svc.CacheStats()
					if st.Hits+st.Misses < st.Evictions {
						errc <- fmt.Errorf("goroutine %d: implausible cache stats %+v", g, st)
					}
				case 3: // playback against whatever image is active
					img := svc.Image()
					if img == nil || len(img.Entries) == 0 {
						continue // nothing installed yet
					}
					key := img.Entries[(g+i)%len(img.Entries)].Key
					out, _, err := svc.Play(ctx, key)
					if err != nil {
						errc <- fmt.Errorf("goroutine %d: play %s: %v", g, key, err)
						continue
					}
					if want, ok := refPlay[key]; ok && !reflect.DeepEqual(out, want) {
						errc <- fmt.Errorf("goroutine %d: playback of %s drifted under churn", g, key)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	st := svc.CacheStats()
	if st.Misses == 0 {
		t.Error("stress run never missed the cache (cache too large for churn?)")
	}
	if st.Evictions == 0 {
		t.Error("stress run never evicted (no churn exercised)")
	}
	if st.Entries > 3*8 {
		// Entries may exceed nominal capacity only by sharding slack.
		t.Errorf("cache holds %d entries, far over its 8-entry capacity", st.Entries)
	}
}
