// Ablation benchmarks for the design choices DESIGN.md calls out:
// window size, thresholding, uniform vs packed layout, overlapping
// windows, adaptive decompression, and common-subexpression elimination
// in the shift-add networks. Each reports its figure of merit as a
// custom metric so `go test -bench=Ablation` prints the whole study.
package compaqt_test

import (
	"testing"

	"compaqt/internal/compress"
	"compaqt/internal/csd"
	"compaqt/internal/dct"
	"compaqt/internal/device"
	"compaqt/internal/engine"
	"compaqt/internal/hwmodel"
	"compaqt/internal/wave"
)

// ablationPulse is the shared workload: a Guadalupe CR waveform.
func ablationPulse(b *testing.B) *wave.Fixed {
	b.Helper()
	m := device.Guadalupe()
	p, err := m.CXPulse(0, 1)
	if err != nil {
		b.Fatal(err)
	}
	return p.Waveform.Quantize()
}

// BenchmarkAblationWindowSize sweeps WS in {4,8,16,32}: ratio rises and
// fmax falls with WS — the tension that makes 16 the paper's sweet
// spot.
func BenchmarkAblationWindowSize(b *testing.B) {
	f := ablationPulse(b)
	for _, ws := range []int{4, 8, 16, 32} {
		b.Run(bname("ws", ws), func(b *testing.B) {
			var ratio, mse float64
			for i := 0; i < b.N; i++ {
				c, err := compress.Compress(f, compress.Options{Variant: compress.IntDCTW, WindowSize: ws})
				if err != nil {
					b.Fatal(err)
				}
				d, err := c.Decompress()
				if err != nil {
					b.Fatal(err)
				}
				ratio = c.Ratio(compress.LayoutUniform)
				mse = wave.MSEFixed(f, d)
			}
			fr, err := hwmodel.ClockRatio(hwmodel.EngineIntDCTW, ws)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(ratio, "uniform-R")
			b.ReportMetric(mse*1e7, "MSE-1e-7")
			b.ReportMetric(fr, "fmax-ratio")
		})
	}
}

// BenchmarkAblationThreshold sweeps the relative threshold: the
// ratio/MSE tradeoff Algorithm 1 navigates.
func BenchmarkAblationThreshold(b *testing.B) {
	f := ablationPulse(b)
	for _, thr := range []float64{0.002, 0.004, 0.008, 0.016, 0.032} {
		b.Run(bnameF("thr", thr), func(b *testing.B) {
			var ratio, mse float64
			for i := 0; i < b.N; i++ {
				c, err := compress.Compress(f, compress.Options{
					Variant: compress.IntDCTW, WindowSize: 16, Threshold: thr,
				})
				if err != nil {
					b.Fatal(err)
				}
				d, err := c.Decompress()
				if err != nil {
					b.Fatal(err)
				}
				ratio = c.Ratio(compress.LayoutPacked)
				mse = wave.MSEFixed(f, d)
			}
			b.ReportMetric(ratio, "packed-R")
			b.ReportMetric(mse*1e7, "MSE-1e-7")
		})
	}
}

// BenchmarkAblationLayout compares packed vs uniform accounting: what
// the deterministic-bandwidth layout costs in capacity (Section V-A).
func BenchmarkAblationLayout(b *testing.B) {
	f := ablationPulse(b)
	var packed, uniform float64
	for i := 0; i < b.N; i++ {
		c, err := compress.Compress(f, compress.Options{Variant: compress.IntDCTW, WindowSize: 16})
		if err != nil {
			b.Fatal(err)
		}
		packed = c.Ratio(compress.LayoutPacked)
		uniform = c.Ratio(compress.LayoutUniform)
	}
	b.ReportMetric(packed, "packed-R")
	b.ReportMetric(uniform, "uniform-R")
	b.ReportMetric(packed/uniform, "capacity-cost")
}

// BenchmarkAblationOverlap compares plain vs overlapping windows at
// WS=8 (the paper's proposed boundary-distortion fix).
func BenchmarkAblationOverlap(b *testing.B) {
	m := device.Guadalupe()
	f := m.XPulse(0).Waveform.Quantize()
	const thr = 0.016
	var plainB, overB, plainR, overR float64
	for i := 0; i < b.N; i++ {
		plain, err := compress.Compress(f, compress.Options{Variant: compress.IntDCTW, WindowSize: 8, Threshold: thr})
		if err != nil {
			b.Fatal(err)
		}
		dp, err := plain.Decompress()
		if err != nil {
			b.Fatal(err)
		}
		over, err := compress.CompressOverlapped(f, 8, thr)
		if err != nil {
			b.Fatal(err)
		}
		do, err := over.Decompress()
		if err != nil {
			b.Fatal(err)
		}
		plainB = compress.BoundaryMSE(f, dp, 8) * 1e7
		overB = compress.BoundaryMSE(f, do, 5) * 1e7
		plainR = plain.Ratio(compress.LayoutPacked)
		overR = over.Ratio(compress.LayoutPacked)
	}
	b.ReportMetric(plainB, "plain-boundary-MSE-1e-7")
	b.ReportMetric(overB, "overlap-boundary-MSE-1e-7")
	b.ReportMetric(plainR, "plain-R")
	b.ReportMetric(overR, "overlap-R")
}

// BenchmarkAblationAdaptive compares plain vs adaptive decompression
// memory traffic on a flat-top (the Fig. 19 mechanism).
func BenchmarkAblationAdaptive(b *testing.B) {
	f := ablationPulse(b)
	e, err := engine.New(16)
	if err != nil {
		b.Fatal(err)
	}
	var plainWords, adaptWords float64
	for i := 0; i < b.N; i++ {
		for _, adaptive := range []bool{false, true} {
			c, err := compress.Compress(f, compress.Options{
				Variant: compress.IntDCTW, WindowSize: 16, Adaptive: adaptive,
			})
			if err != nil {
				b.Fatal(err)
			}
			_, st, err := e.Run(c)
			if err != nil {
				b.Fatal(err)
			}
			if adaptive {
				adaptWords = float64(st.MemWords)
			} else {
				plainWords = float64(st.MemWords)
			}
		}
	}
	b.ReportMetric(plainWords, "plain-mem-words")
	b.ReportMetric(adaptWords, "adaptive-mem-words")
	b.ReportMetric(plainWords/adaptWords, "traffic-reduction")
}

// BenchmarkAblationCSE quantifies what greedy common-subexpression
// elimination saves in the shift-add networks (Table IV's counts).
func BenchmarkAblationCSE(b *testing.B) {
	for _, ws := range []int{8, 16, 32} {
		b.Run(bname("ws", ws), func(b *testing.B) {
			coeffs := dct.Coefficients(ws)
			var naive, cse int
			for i := 0; i < b.N; i++ {
				net := csd.NewNetwork(coeffs)
				naive = net.Adders()
				cse, _ = csd.MCMCost(coeffs)
			}
			b.ReportMetric(float64(naive), "naive-adders")
			b.ReportMetric(float64(cse), "cse-adders")
			b.ReportMetric(float64(naive-cse), "adders-saved")
		})
	}
}

func bname(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func bnameF(prefix string, v float64) string {
	// Render thresholds as per-mille to keep sub-benchmark names clean.
	return prefix + "=" + itoa(int(v*1000)) + "e-3"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
