// Package experiments is the public surface of COMPAQT's evaluation
// drivers: one registered experiment per table and figure of the MICRO
// 2022 paper, each returning a rendered text table with the paper's
// reference numbers alongside.
//
// Experiments are addressed by id — "fig5a" through "fig20", "table1"
// through "table9" — via ByID, or enumerated in registration order via
// All. Each driver regenerates its artifact from first principles:
// the memory/bandwidth walls (Fig. 5), compression ratios of all five
// variants — delta, dict, DCT-N, DCT-W, int-DCT-W — across window
// sizes (Fig. 7), fidelity under compression (Fig. 9, Fig. 15, Table
// III), the per-window word histograms behind the uniform layout
// (Fig. 11), decompression-engine microarchitecture numbers (Fig. 16,
// Table IV), QEC scaling (Fig. 17, Table V), and the power and
// adaptive-ASIC results (Fig. 18-20). The cmd/compaqt-report binary
// prints them all; bench_test.go wraps each driver in a benchmark so
// `go test -bench=.` reproduces the evaluation with headline numbers
// as metrics.
package experiments

import "compaqt/internal/experiments"

// Experiment is one registered table/figure driver.
type Experiment = experiments.Experiment

// Table is a rendered experiment result.
type Table = experiments.Table

var (
	// All lists every registered experiment in registration order.
	All = experiments.All
	// ByID finds one experiment by its id (e.g. "fig9", "table5").
	ByID = experiments.ByID
)
