// Package experiments is the public surface of COMPAQT's evaluation
// drivers: one registered experiment per table and figure of the MICRO
// 2022 paper, each returning a rendered text table with the paper's
// reference numbers alongside.
package experiments

import "compaqt/internal/experiments"

// Experiment is one registered table/figure driver.
type Experiment = experiments.Experiment

// Table is a rendered experiment result.
type Table = experiments.Table

var (
	// All lists every registered experiment in registration order.
	All = experiments.All
	// ByID finds one experiment by its id (e.g. "fig9", "table5").
	ByID = experiments.ByID
)
